// Package session holds analysis sessions as first-class server state:
// named selections over a timestep (a WAH-compressed bitmap plus, once
// tracking is requested, the materialized particle-ID set), refined
// incrementally with bitmap algebra instead of re-evaluating the full
// predicate chain from scratch.
//
// The paper's workflow (Fig. 1) is a session, not a query: brush a region
// in parallel coordinates, refine the condition, trace the selected
// particles across timesteps. The Manager is the bounded, TTL-evicted
// store behind the /v1/session API; it is deliberately HTTP-free so the
// refinement algebra and eviction policy are testable in isolation.
//
// Refinement algebra over a stored selection S and a delta predicate d
// (evaluated alone, one scatter over the shard map):
//
//	refine=and     S' = S ∧ bits(d)    expr' = (expr && d)
//	refine=or      S' = S ∨ bits(d)    expr' = (expr || d)
//	refine=andnot  S' = S ∧ ¬bits(d)   expr' = (expr && !(d))
//
// The canonical effective expression is maintained beside the bitmap so a
// stale selection (its step's catalog generation moved under it) can be
// rebuilt from scratch, and so views and tracking compose with the shard
// tier — shards receive predicate text, never frontend bitmaps.
package session

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bitmap"
)

// ErrTooLarge rejects a selection that alone exceeds the manager's byte
// bound: no eviction sequence could make it fit.
var ErrTooLarge = errors.New("session: selection exceeds the session-store byte bound")

// Config parameterises a Manager. Zero values take the documented
// defaults; negative values disable the corresponding bound.
type Config struct {
	// TTL evicts sessions idle longer than this. 0 means 15m.
	TTL time.Duration
	// MaxSessions bounds the session count (LRU-evicted). 0 means 64.
	MaxSessions int
	// MaxBytes bounds the total stored selection bytes across sessions
	// (LRU-evicted). 0 means 64 MiB.
	MaxBytes int64
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 64 << 20
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Track is the stored result of following a selection's ID set across
// timesteps: per-step match counts under the canonical `id in (...)`
// predicate. A partial track (a shard lost mid-step) is never stored.
type Track struct {
	Steps  []int
	Counts []uint64
	Expr   string // canonical id-membership predicate
}

// Selection is one named selection inside a session. Bits and IDs are
// shared read-only snapshots: bitmap operations never mutate their
// receiver, and callers must not modify them in place.
type Selection struct {
	Name    string
	Dataset string
	Step    int
	// Gen is the step's catalog generation when the bitmap was built. An
	// ingest or index publish bumps the generation, marking the bitmap
	// stale: the next refinement rebuilds from the effective expression
	// instead of reusing it.
	Gen     uint64
	Backend string
	// Expr is the canonical effective predicate — the whole refinement
	// chain folded into one parseable expression.
	Expr    string
	Bits    *bitmap.Vector
	Count   uint64 // set bits in Bits
	Rows    uint64 // step rows the bitmap spans
	Refines int    // incremental refinements applied so far
	IDs     []int64
	Track   *Track
	Updated time.Time
}

// SizeBytes is the selection's accounted memory: the compressed bitmap,
// the materialized ID set, the stored expressions and the track counts.
func (sel *Selection) SizeBytes() int64 {
	n := int64(len(sel.Name) + len(sel.Expr) + len(sel.Dataset) + len(sel.Backend))
	if sel.Bits != nil {
		n += int64(sel.Bits.SizeBytes())
	}
	n += 8 * int64(len(sel.IDs))
	if sel.Track != nil {
		n += int64(len(sel.Track.Expr)) + 8*int64(len(sel.Track.Steps)) + 8*int64(len(sel.Track.Counts))
	}
	return n
}

// session is the internal mutable record; the public surface hands out
// copies and summaries only.
type session struct {
	id         string
	created    time.Time
	lastUsed   time.Time
	selections map[string]*Selection
	bytes      int64
}

func (s *session) resize() {
	s.bytes = 0
	for _, sel := range s.selections {
		s.bytes += sel.SizeBytes()
	}
}

// SelectionInfo summarizes one selection for listings.
type SelectionInfo struct {
	Name      string    `json:"name"`
	Dataset   string    `json:"dataset"`
	Step      int       `json:"step"`
	Backend   string    `json:"backend"`
	Expr      string    `json:"expr"`
	Count     uint64    `json:"count"`
	Rows      uint64    `json:"rows"`
	Refines   int       `json:"refines"`
	TrackedID int       `json:"tracked_ids,omitempty"`
	SizeBytes int64     `json:"size_bytes"`
	Updated   time.Time `json:"updated"`
}

// Info summarizes one session for listings and /v1/stats.
type Info struct {
	ID         string          `json:"id"`
	Created    time.Time       `json:"created"`
	LastUsed   time.Time       `json:"last_used"`
	Bytes      int64           `json:"bytes"`
	Selections []SelectionInfo `json:"selections"`
}

// Stats is the manager's observable state: the session_* metric sources
// and the /v1/stats block.
type Stats struct {
	Active      int    `json:"active"`
	Selections  int    `json:"selections"`
	Bytes       int64  `json:"bytes"`
	Creates     uint64 `json:"creates"`
	RefineReuse uint64 `json:"refine_reuse"`
	// RefineScratch counts refinements that could not reuse the stored
	// bitmap (stale generation, missing selection) and rebuilt instead.
	RefineScratch  uint64 `json:"refine_scratch"`
	TTLEvictions   uint64 `json:"ttl_evictions"`
	CountEvictions uint64 `json:"count_evictions"`
	BytesEvictions uint64 `json:"bytes_evictions"`
	PartialRejects uint64 `json:"partial_rejects"`
}

// Manager is the bounded session store. All methods are safe for
// concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // session IDs, least recently used first
	bytes    int64

	creates, reuse, scratch         uint64
	evictTTL, evictCount, evictSize uint64
	partialRejects                  uint64
}

// NewManager creates a Manager with the given bounds.
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg.withDefaults(), sessions: map[string]*session{}}
}

// NewID returns a fresh random session ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session: rand: %v", err)) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// touchLocked moves id to the most-recently-used end of the order.
func (m *Manager) touchLocked(id string) {
	for i, v := range m.order {
		if v == id {
			m.order = append(append(m.order[:i:i], m.order[i+1:]...), id)
			return
		}
	}
	m.order = append(m.order, id)
}

func (m *Manager) dropLocked(id string) {
	s, ok := m.sessions[id]
	if !ok {
		return
	}
	m.bytes -= s.bytes
	delete(m.sessions, id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// sweepLocked applies the TTL bound. keep is exempt (the session being
// actively used can never be idle).
func (m *Manager) sweepLocked(now time.Time, keep string) {
	if m.cfg.TTL < 0 {
		return
	}
	for id, s := range m.sessions {
		if id != keep && now.Sub(s.lastUsed) > m.cfg.TTL {
			m.dropLocked(id)
			m.evictTTL++
		}
	}
}

// evictLocked enforces the count and byte bounds by evicting the least
// recently used sessions, never the one named keep.
func (m *Manager) evictLocked(keep string) {
	evictOne := func() bool {
		for _, id := range m.order {
			if id != keep {
				m.dropLocked(id)
				return true
			}
		}
		return false
	}
	if m.cfg.MaxSessions > 0 {
		for len(m.sessions) > m.cfg.MaxSessions {
			if !evictOne() {
				break
			}
			m.evictCount++
		}
	}
	if m.cfg.MaxBytes > 0 {
		for m.bytes > m.cfg.MaxBytes {
			if !evictOne() {
				break
			}
			m.evictSize++
		}
	}
}

// Create registers a new session under a fresh random ID and returns it.
func (m *Manager) Create() Info {
	id := NewID()
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(now, id)
	m.sessions[id] = &session{id: id, created: now, lastUsed: now, selections: map[string]*Selection{}}
	m.creates++
	m.touchLocked(id)
	m.evictLocked(id)
	return Info{ID: id, Created: now, LastUsed: now}
}

// ensureLocked returns the session, creating it when absent (sessions are
// created on first use so clients may choose their own IDs).
func (m *Manager) ensureLocked(id string, now time.Time) *session {
	s, ok := m.sessions[id]
	if !ok {
		s = &session{id: id, created: now, selections: map[string]*Selection{}}
		m.sessions[id] = s
		m.creates++
	}
	s.lastUsed = now
	m.touchLocked(id)
	return s
}

// Selection returns a shallow copy of the named selection. The returned
// Bits and IDs are shared read-only snapshots.
func (m *Manager) Selection(sid, name string) (Selection, bool) {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(now, "")
	s, ok := m.sessions[sid]
	if !ok {
		return Selection{}, false
	}
	sel, ok := s.selections[name]
	if !ok {
		return Selection{}, false
	}
	s.lastUsed = now
	m.touchLocked(sid)
	return *sel, true
}

// Put stores a selection in the session (created on first use), enforcing
// every bound. The stored value is a private copy of sel; a selection too
// large for the byte bound is rejected with ErrTooLarge, never stored.
func (m *Manager) Put(sid string, sel Selection) error {
	sel.Updated = m.cfg.Now()
	if m.cfg.MaxBytes > 0 && sel.SizeBytes() > m.cfg.MaxBytes {
		return fmt.Errorf("%w: %d bytes > bound %d", ErrTooLarge, sel.SizeBytes(), m.cfg.MaxBytes)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(sel.Updated, sid)
	s := m.ensureLocked(sid, sel.Updated)
	m.bytes -= s.bytes
	s.selections[sel.Name] = &sel
	s.resize()
	m.bytes += s.bytes
	m.evictLocked(sid)
	return nil
}

// Delete removes a session, reporting whether it existed.
func (m *Manager) Delete(sid string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.sessions[sid]
	m.dropLocked(sid)
	return ok
}

// Get summarizes one session.
func (m *Manager) Get(sid string) (Info, bool) {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(now, "")
	s, ok := m.sessions[sid]
	if !ok {
		return Info{}, false
	}
	return m.infoLocked(s), true
}

// List summarizes every live session, most recently used first.
func (m *Manager) List() []Info {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(now, "")
	out := make([]Info, 0, len(m.sessions))
	for i := len(m.order) - 1; i >= 0; i-- {
		if s, ok := m.sessions[m.order[i]]; ok {
			out = append(out, m.infoLocked(s))
		}
	}
	return out
}

func (m *Manager) infoLocked(s *session) Info {
	info := Info{ID: s.id, Created: s.created, LastUsed: s.lastUsed, Bytes: s.bytes}
	for _, sel := range s.selections {
		info.Selections = append(info.Selections, SelectionInfo{
			Name: sel.Name, Dataset: sel.Dataset, Step: sel.Step,
			Backend: sel.Backend, Expr: sel.Expr,
			Count: sel.Count, Rows: sel.Rows, Refines: sel.Refines,
			TrackedID: len(sel.IDs), SizeBytes: sel.SizeBytes(),
			Updated: sel.Updated,
		})
	}
	return info
}

// NoteReuse counts one incremental refinement that reused the stored
// bitmap — the session_refine_reuse_total source.
func (m *Manager) NoteReuse() {
	m.mu.Lock()
	m.reuse++
	m.mu.Unlock()
}

// NoteScratch counts one refinement that had to rebuild from scratch.
func (m *Manager) NoteScratch() {
	m.mu.Lock()
	m.scratch++
	m.mu.Unlock()
}

// NotePartialReject counts one selection or track result refused storage
// because it was merged without every shard.
func (m *Manager) NotePartialReject() {
	m.mu.Lock()
	m.partialRejects++
	m.mu.Unlock()
}

// Stats snapshots the manager's observable state.
func (m *Manager) Stats() Stats {
	now := m.cfg.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(now, "")
	st := Stats{
		Active: len(m.sessions), Bytes: m.bytes,
		Creates: m.creates, RefineReuse: m.reuse, RefineScratch: m.scratch,
		TTLEvictions: m.evictTTL, CountEvictions: m.evictCount,
		BytesEvictions: m.evictSize, PartialRejects: m.partialRejects,
	}
	for _, s := range m.sessions {
		st.Selections += len(s.selections)
	}
	return st
}

// Combine applies one refinement-algebra step: the stored bitmap against
// the delta bitmap under the given mode ("and", "or", "andnot").
func Combine(prev, delta *bitmap.Vector, mode string) (*bitmap.Vector, error) {
	switch mode {
	case "and":
		return prev.And(delta), nil
	case "or":
		return prev.Or(delta), nil
	case "andnot":
		return prev.AndNot(delta), nil
	default:
		return nil, fmt.Errorf("session: unknown refine mode %q (and | or | andnot)", mode)
	}
}
