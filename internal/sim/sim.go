// Package sim generates synthetic laser wakefield accelerator (LWFA)
// particle data with the statistical and temporal structure of the VORPAL
// simulations analysed in the paper: a moving simulation window sweeping
// through a plasma, a thermal electron background with a suprathermal
// momentum tail spanning several decades, and two trapped particle beams
// in the first and second wake periods behind the laser pulse.
//
// The model is deterministic: a particle's full trajectory is a pure
// function of its identifier and the timestep, so identifier-based
// tracking across timesteps reconstructs physically consistent world
// lines. Key qualitative behaviours reproduced from the paper's use case
// (Section IV):
//
//   - Background particles enter the window from the right as it sweeps
//     and leave on the left; beam particles are injected around a fixed
//     timestep and then stay with the window.
//   - Beam 1 (first wake period, rightmost) accelerates hard, reaches
//     peak momentum with a low energy spread mid-run (t≈0.7·T), then
//     dephases and decelerates.
//   - Beam 2 (second wake period) accelerates more slowly but
//     monotonically, overtaking beam 1 by the final timestep — which is
//     why a late-time momentum threshold selects both beams.
//   - Transverse focusing: beam particles spiral inward after injection.
package sim

import (
	"fmt"
	"math"
)

// Config parameterises a synthetic LWFA run. The zero value is not valid;
// use DefaultConfig as a starting point.
type Config struct {
	Steps             int     // number of timesteps
	Dim               int     // 2 or 3 (z, pz are zero in 2D)
	BackgroundPerStep int     // approximate background particles in the window
	BeamParticles     int     // particles per beam (two beams)
	SuprathermalFrac  float64 // fraction of background with a log-uniform px tail
	Seed              uint64  // deterministic seed

	WindowLength float64 // window extent in x (metres)
	WindowSpeed  float64 // window advance per timestep (metres)

	ThermalPx    float64 // thermal momentum scale
	TailPxMin    float64 // suprathermal tail: log-uniform lower bound
	TailPxMax    float64 // suprathermal tail: upper bound
	Beam1PeakPx  float64 // beam 1 momentum at its dephasing peak
	Beam1FinalPx float64 // beam 1 momentum at the final timestep (after dephasing)
	Beam2FinalPx float64 // beam 2 momentum at the final timestep
}

// DefaultConfig returns parameters scaled to the paper's 2D dataset
// (38 timesteps, x ≈ 1.3e-3 m at the end, momenta up to ~1.1e11).
func DefaultConfig() Config {
	return Config{
		Steps:             38,
		Dim:               2,
		BackgroundPerStep: 50000,
		BeamParticles:     600,
		SuprathermalFrac:  0.015,
		Seed:              0x5eed,
		WindowLength:      1.0e-4,
		WindowSpeed:       3.3e-5,
		ThermalPx:         6.0e7,
		TailPxMin:         2.0e8,
		TailPxMax:         4.0e10,
		Beam1PeakPx:       1.10e11,
		Beam1FinalPx:      0.93e11,
		Beam2FinalPx:      0.98e11,
	}
}

// Variables lists the per-particle columns produced for every timestep, in
// file order. xrel(t) = x(t) − max(x(t)) is the derived relative window
// position the paper adds to the data.
var Variables = []string{"x", "y", "z", "px", "py", "pz", "xrel"}

// IDVar is the name of the identifier column.
const IDVar = "id"

// Simulation generates timesteps for one configuration.
type Simulation struct {
	cfg Config

	spacing   float64 // background particle spacing in lab x
	nBgTotal  int64   // total background particles over the whole sweep
	beam1Base int64   // first id of beam 1
	beam2Base int64   // first id of beam 2
	tInject   int     // first injection timestep
	tPeak     int     // beam 1 dephasing peak timestep
}

// New validates the configuration and returns a simulation.
func New(cfg Config) (*Simulation, error) {
	if cfg.Steps < 2 {
		return nil, fmt.Errorf("sim: need at least 2 steps, got %d", cfg.Steps)
	}
	if cfg.Dim != 2 && cfg.Dim != 3 {
		return nil, fmt.Errorf("sim: dim must be 2 or 3, got %d", cfg.Dim)
	}
	if cfg.BackgroundPerStep < 1 {
		return nil, fmt.Errorf("sim: BackgroundPerStep must be positive")
	}
	if cfg.WindowLength <= 0 || cfg.WindowSpeed <= 0 {
		return nil, fmt.Errorf("sim: window length and speed must be positive")
	}
	if cfg.SuprathermalFrac < 0 || cfg.SuprathermalFrac > 1 {
		return nil, fmt.Errorf("sim: SuprathermalFrac must be in [0,1]")
	}
	s := &Simulation{cfg: cfg}
	s.spacing = cfg.WindowLength / float64(cfg.BackgroundPerStep)
	sweep := cfg.WindowSpeed*float64(cfg.Steps-1) + cfg.WindowLength
	s.nBgTotal = int64(math.Ceil(sweep / s.spacing))
	s.beam1Base = s.nBgTotal
	s.beam2Base = s.nBgTotal + int64(cfg.BeamParticles)
	s.tInject = int(math.Round(0.37 * float64(cfg.Steps-1)))
	if s.tInject < 1 {
		s.tInject = 1
	}
	s.tPeak = int(math.Round(0.71 * float64(cfg.Steps-1)))
	if s.tPeak <= s.tInject {
		s.tPeak = s.tInject + 1
	}
	if s.tPeak >= cfg.Steps {
		s.tPeak = cfg.Steps - 1
	}
	return s, nil
}

// Config returns the simulation configuration.
func (s *Simulation) Config() Config { return s.cfg }

// InjectionStep returns the timestep at which beam injection begins.
func (s *Simulation) InjectionStep() int { return s.tInject }

// PeakStep returns beam 1's dephasing-peak timestep.
func (s *Simulation) PeakStep() int { return s.tPeak }

// WindowStart returns the lab-frame x where the window begins at step t.
func (s *Simulation) WindowStart(t int) float64 {
	return s.cfg.WindowSpeed * float64(t)
}

// WindowEnd returns the lab-frame x where the window ends at step t.
func (s *Simulation) WindowEnd(t int) float64 {
	return s.WindowStart(t) + s.cfg.WindowLength
}

// ParticleSet holds one timestep's particles in structure-of-arrays form,
// ordered by ascending identifier.
type ParticleSet struct {
	Step                      int
	ID                        []int64
	X, Y, Z, Px, Py, Pz, XRel []float64
}

// N returns the particle count.
func (p *ParticleSet) N() int { return len(p.ID) }

// Columns returns the float columns keyed by variable name.
func (p *ParticleSet) Columns() map[string][]float64 {
	return map[string][]float64{
		"x": p.X, "y": p.Y, "z": p.Z,
		"px": p.Px, "py": p.Py, "pz": p.Pz,
		"xrel": p.XRel,
	}
}

// Step generates the particle population of timestep t.
func (s *Simulation) Step(t int) (*ParticleSet, error) {
	if t < 0 || t >= s.cfg.Steps {
		return nil, fmt.Errorf("sim: step %d out of range [0,%d)", t, s.cfg.Steps)
	}
	ps := &ParticleSet{Step: t}
	w0, w1 := s.WindowStart(t), s.WindowEnd(t)

	// Background: ids are laid out along lab x, so the window holds a
	// contiguous id range.
	first := int64(math.Ceil(w0 / s.spacing))
	if first < 0 {
		first = 0
	}
	for id := first; id < s.nBgTotal; id++ {
		x0 := float64(id) * s.spacing
		if x0 > w1 {
			break
		}
		s.emitBackground(ps, id, t, x0)
	}
	// Beams: emitted once injected.
	for k := 0; k < s.cfg.BeamParticles; k++ {
		s.emitBeam(ps, s.beam1Base+int64(k), 1, t)
	}
	for k := 0; k < s.cfg.BeamParticles; k++ {
		s.emitBeam(ps, s.beam2Base+int64(k), 2, t)
	}

	// Derived quantity xrel(t) = x(t) − max(x(t)).
	maxX := math.Inf(-1)
	for _, x := range ps.X {
		if x > maxX {
			maxX = x
		}
	}
	ps.XRel = make([]float64, len(ps.X))
	for i, x := range ps.X {
		ps.XRel[i] = x - maxX
	}
	return ps, nil
}

func (s *Simulation) emitBackground(ps *ParticleSet, id int64, t int, x0 float64) {
	cfg := &s.cfg
	// Plasma wave motion: small deterministic oscillation around x0.
	phase := 2 * math.Pi * (x0/wakeWavelength(cfg) + 0.13*float64(t))
	x := x0 + 0.004*cfg.WindowLength*math.Sin(phase)*s.unit(id, 1)

	yAmp := 2.5e-5 * (0.5 + s.unit(id, 2))
	y := yAmp * math.Sin(2*math.Pi*s.unit(id, 3)+0.31*float64(t))
	var z float64
	if cfg.Dim == 3 {
		z = yAmp * math.Cos(2*math.Pi*s.unit(id, 4)+0.29*float64(t))
	}

	px := cfg.ThermalPx * s.norm(id, 5, uint64(t))
	if s.unit(id, 6) < cfg.SuprathermalFrac {
		// Log-uniform suprathermal tail, slowly energised over time.
		logv := math.Log(cfg.TailPxMin) + s.unit(id, 7)*(math.Log(cfg.TailPxMax)-math.Log(cfg.TailPxMin))
		px = math.Exp(logv) * (1 + 0.02*float64(t))
	}
	py := 0.3 * cfg.ThermalPx * s.norm(id, 8, uint64(t))
	var pz float64
	if cfg.Dim == 3 {
		pz = 0.3 * cfg.ThermalPx * s.norm(id, 9, uint64(t))
	}
	ps.append(id, x, y, z, px, py, pz)
}

// wakeWavelength is the plasma wake period used for bucket spacing.
func wakeWavelength(cfg *Config) float64 { return 0.28 * cfg.WindowLength }

func (s *Simulation) emitBeam(ps *ParticleSet, id int64, beam int, t int) {
	cfg := &s.cfg
	// Injection staggering: half the beam enters at tInject, half one step
	// later (the two injection sets of Fig. 6).
	birth := s.tInject
	if s.unit(id, 10) < 0.5 {
		birth = s.tInject + 1
	}
	if t < birth {
		return
	}
	age := float64(t - birth)
	lifetime := float64(cfg.Steps - 1 - birth)

	// Window-relative bucket centres: beam 1 rides the first wake period
	// behind the laser (near the right edge), beam 2 one wavelength back.
	lam := wakeWavelength(cfg)
	var bucket float64
	if beam == 1 {
		bucket = -0.55 * lam
	} else {
		bucket = -1.55 * lam
	}
	// Longitudinal slippage inside the bucket plus per-particle jitter.
	slip := 0.08 * lam * (age / math.Max(lifetime, 1))
	xrel := bucket + 0.10*lam*(s.unit(id, 11)-0.5) + slip
	x := s.WindowEnd(t) + xrel

	// Transverse focusing: oscillation with decaying amplitude; beam 1
	// focuses harder (the refinement story of Section IV-D).
	decay := 0.35
	if beam == 2 {
		decay = 0.2
	}
	amp := 1.8e-5 * math.Exp(-decay*age) * (0.4 + s.unit(id, 12))
	ph := 2*math.Pi*s.unit(id, 13) + 0.9*age
	y := amp * math.Sin(ph)
	var z float64
	if cfg.Dim == 3 {
		z = amp * math.Cos(ph)
	}

	px := s.beamPx(id, beam, t, birth)
	// Transverse momentum follows the focusing oscillation.
	py := 0.01 * px * math.Cos(ph)
	var pz float64
	if cfg.Dim == 3 {
		pz = -0.01 * px * math.Sin(ph)
	}
	ps.append(id, x, y, z, px, py, pz)
}

// beamPx returns the longitudinal momentum of a beam particle.
func (s *Simulation) beamPx(id int64, beam, t, birth int) float64 {
	cfg := &s.cfg
	tEnd := cfg.Steps - 1
	var base float64
	if beam == 1 {
		if t <= s.tPeak {
			// Accelerating phase: smooth ramp to the peak.
			tau := float64(t-birth) / math.Max(float64(s.tPeak-birth), 1)
			base = cfg.Beam1PeakPx * ramp(tau)
		} else {
			// Dephased: linear decay to the final value.
			tau := float64(t-s.tPeak) / math.Max(float64(tEnd-s.tPeak), 1)
			base = cfg.Beam1PeakPx + (cfg.Beam1FinalPx-cfg.Beam1PeakPx)*tau
		}
	} else {
		// Beam 2: slower, monotonic ramp through the whole run.
		tau := float64(t-birth) / math.Max(float64(tEnd-birth), 1)
		base = cfg.Beam2FinalPx * ramp(0.85*tau) / ramp(0.85)
	}
	// Energy spread: beam 1 tightens near its peak, beam 2 stays broader.
	var spread float64
	if beam == 1 {
		dist := math.Abs(float64(t-s.tPeak)) / math.Max(float64(tEnd-birth), 1)
		spread = 0.03 + 0.10*dist
	} else {
		spread = 0.09
	}
	return base * (1 + spread*s.norm(id, 14))
}

// ramp is a smooth 0→1 acceleration profile.
func ramp(tau float64) float64 {
	if tau <= 0 {
		return 0.02 // injected with small but nonzero momentum
	}
	if tau > 1 {
		tau = 1
	}
	v := math.Sin(tau * math.Pi / 2)
	return 0.02 + 0.98*v*v
}

func (ps *ParticleSet) append(id int64, x, y, z, px, py, pz float64) {
	ps.ID = append(ps.ID, id)
	ps.X = append(ps.X, x)
	ps.Y = append(ps.Y, y)
	ps.Z = append(ps.Z, z)
	ps.Px = append(ps.Px, px)
	ps.Py = append(ps.Py, py)
	ps.Pz = append(ps.Pz, pz)
}

// BeamIDs returns the identifier range [lo, hi) of the given beam (1 or 2),
// for test and analysis cross-checks.
func (s *Simulation) BeamIDs(beam int) (lo, hi int64) {
	if beam == 1 {
		return s.beam1Base, s.beam1Base + int64(s.cfg.BeamParticles)
	}
	return s.beam2Base, s.beam2Base + int64(s.cfg.BeamParticles)
}

// --- deterministic hashing -------------------------------------------------

// mix64 is the splitmix64 finaliser, the workhorse of the deterministic
// per-particle randomness.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit returns a deterministic uniform value in [0, 1) for (id, salts…).
func (s *Simulation) unit(id int64, salts ...uint64) float64 {
	h := mix64(s.cfg.Seed ^ uint64(id))
	for _, salt := range salts {
		h = mix64(h ^ salt*0xa0761d6478bd642f)
	}
	return float64(h>>11) / float64(1<<53)
}

// norm returns a deterministic standard normal value for (id, salts…) via
// Box–Muller.
func (s *Simulation) norm(id int64, salts ...uint64) float64 {
	u1 := s.unit(id, append(salts, 0xdead)...)
	u2 := s.unit(id, append(salts, 0xbeef)...)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
