package sim

import (
	"fmt"

	"repro/internal/colstore"
	"repro/internal/fastbit"
)

// WriteOptions controls dataset generation.
type WriteOptions struct {
	// IndexVars lists the variables to build bitmap indexes for; nil
	// indexes every variable.
	IndexVars []string
	// Index holds the bitmap index build options.
	Index fastbit.IndexOptions
	// SkipIndex generates data files only (the "one-time preprocessing"
	// can then be run separately).
	SkipIndex bool
	// ChunkRows sets the colstore chunk size; 0 selects the default.
	ChunkRows int
	// Progress, when non-nil, is called after each timestep is written.
	Progress func(step, totalSteps, particles int)
}

// WriteDataset runs the simulation and writes every timestep as a colstore
// file plus (unless skipped) a FastBit sidecar index — the preprocessing
// pipeline of Figure 1.
func WriteDataset(dir string, cfg Config, opt WriteOptions) (*colstore.Dataset, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	vars := append(append([]string(nil), Variables...), IDVar)
	ds, err := colstore.CreateDataset(dir, colstore.DatasetMeta{
		Name:      "lwfa-synthetic",
		Steps:     cfg.Steps,
		Variables: vars,
		Comment:   fmt.Sprintf("synthetic LWFA run, dim=%d, seed=%#x", cfg.Dim, cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	indexVars := opt.IndexVars
	if indexVars == nil {
		indexVars = Variables
	}
	for t := 0; t < cfg.Steps; t++ {
		ps, err := s.Step(t)
		if err != nil {
			return nil, err
		}
		if err := writeStep(ds, t, ps, opt, indexVars); err != nil {
			return nil, err
		}
		if opt.Progress != nil {
			opt.Progress(t, cfg.Steps, ps.N())
		}
	}
	return ds, nil
}

func writeStep(ds *colstore.Dataset, t int, ps *ParticleSet, opt WriteOptions, indexVars []string) error {
	w, err := colstore.NewWriter(ds.StepPath(t), uint64(ps.N()), opt.ChunkRows)
	if err != nil {
		return err
	}
	cols := ps.Columns()
	for _, name := range Variables {
		if err := w.AddFloat64(name, cols[name]); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.AddInt64(IDVar, ps.ID); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if opt.SkipIndex {
		return nil
	}
	toIndex := map[string][]float64{}
	for _, name := range indexVars {
		col, ok := cols[name]
		if !ok {
			return fmt.Errorf("sim: cannot index unknown variable %q", name)
		}
		toIndex[name] = col
	}
	si, err := fastbit.BuildStepIndex(toIndex, ps.ID, IDVar, opt.Index)
	if err != nil {
		return err
	}
	return si.WriteFile(ds.IndexPath(t))
}
