package sim

import (
	"math"
	"testing"

	"repro/internal/fastbit"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.BackgroundPerStep = 2000
	cfg.BeamParticles = 100
	return cfg
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Steps = 1 },
		func(c *Config) { c.Dim = 4 },
		func(c *Config) { c.BackgroundPerStep = 0 },
		func(c *Config) { c.WindowLength = 0 },
		func(c *Config) { c.WindowSpeed = -1 },
		func(c *Config) { c.SuprathermalFrac = 2 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(smallConfig()); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestStepDeterministic(t *testing.T) {
	s1, _ := New(smallConfig())
	s2, _ := New(smallConfig())
	a, err := s1.Step(20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Step(20)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Fatalf("nondeterministic count: %d vs %d", a.N(), b.N())
	}
	for i := range a.ID {
		if a.ID[i] != b.ID[i] || a.X[i] != b.X[i] || a.Px[i] != b.Px[i] {
			t.Fatalf("nondeterministic particle %d", i)
		}
	}
}

func TestStepOutOfRange(t *testing.T) {
	s, _ := New(smallConfig())
	if _, err := s.Step(-1); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := s.Step(smallConfig().Steps); err == nil {
		t.Fatal("overflow step accepted")
	}
}

func TestIDsUniquePerStep(t *testing.T) {
	s, _ := New(smallConfig())
	for _, step := range []int{0, 14, 37} {
		ps, err := s.Step(step)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool, ps.N())
		for _, id := range ps.ID {
			if seen[id] {
				t.Fatalf("step %d: duplicate id %d", step, id)
			}
			seen[id] = true
		}
	}
}

func TestParticleCountRoughlyConstant(t *testing.T) {
	s, _ := New(smallConfig())
	base := 0
	for _, step := range []int{5, 15, 25, 35} {
		ps, err := s.Step(step)
		if err != nil {
			t.Fatal(err)
		}
		if base == 0 {
			base = ps.N()
			continue
		}
		ratio := float64(ps.N()) / float64(base)
		if ratio < 0.9 || ratio > 1.2 {
			t.Fatalf("step %d count %d strays from base %d", step, ps.N(), base)
		}
	}
}

func TestParticlesInsideWindow(t *testing.T) {
	s, _ := New(smallConfig())
	for _, step := range []int{0, 20, 37} {
		ps, err := s.Step(step)
		if err != nil {
			t.Fatal(err)
		}
		w0, w1 := s.WindowStart(step), s.WindowEnd(step)
		slack := 0.01 * (w1 - w0)
		for i, x := range ps.X {
			if x < w0-slack || x > w1+slack {
				t.Fatalf("step %d particle %d (id %d) at x=%g outside window [%g,%g]",
					step, i, ps.ID[i], x, w0, w1)
			}
		}
	}
}

func TestXRelDerivation(t *testing.T) {
	s, _ := New(smallConfig())
	ps, err := s.Step(25)
	if err != nil {
		t.Fatal(err)
	}
	maxRel := math.Inf(-1)
	for i, xr := range ps.XRel {
		if xr > maxRel {
			maxRel = xr
		}
		if xr > 1e-18 {
			t.Fatalf("xrel[%d] = %g > 0", i, xr)
		}
	}
	if maxRel != 0 {
		t.Fatalf("max xrel = %g, want 0", maxRel)
	}
}

func TestBackgroundFlowsThroughWindow(t *testing.T) {
	s, _ := New(smallConfig())
	early, _ := s.Step(2)
	late, _ := s.Step(35)
	earlySet := map[int64]bool{}
	for _, id := range early.ID {
		earlySet[id] = true
	}
	// Most late-step background particles were not present early on: the
	// window has moved past the early plasma.
	lo1, _ := s.BeamIDs(1)
	var stale int
	var total int
	for _, id := range late.ID {
		if id >= lo1 {
			continue // skip beams
		}
		total++
		if earlySet[id] {
			stale++
		}
	}
	if total == 0 {
		t.Fatal("no background at late step")
	}
	if float64(stale)/float64(total) > 0.05 {
		t.Fatalf("%d/%d late background particles were already present at t=2", stale, total)
	}
}

func TestBeamsAbsentBeforeInjection(t *testing.T) {
	s, _ := New(smallConfig())
	ps, _ := s.Step(s.InjectionStep() - 1)
	lo1, _ := s.BeamIDs(1)
	for _, id := range ps.ID {
		if id >= lo1 {
			t.Fatalf("beam particle %d present before injection", id)
		}
	}
	// After injection+1, all beam particles present.
	ps2, _ := s.Step(s.InjectionStep() + 1)
	var beams int
	for _, id := range ps2.ID {
		if id >= lo1 {
			beams++
		}
	}
	if beams != 2*s.Config().BeamParticles {
		t.Fatalf("found %d beam particles, want %d", beams, 2*s.Config().BeamParticles)
	}
}

// beamStats returns the mean px of each beam at step t.
func beamStats(t *testing.T, s *Simulation, step int) (mean1, mean2 float64) {
	t.Helper()
	ps, err := s.Step(step)
	if err != nil {
		t.Fatal(err)
	}
	lo1, hi1 := s.BeamIDs(1)
	lo2, hi2 := s.BeamIDs(2)
	var sum1, sum2 float64
	var n1, n2 int
	for i, id := range ps.ID {
		switch {
		case id >= lo1 && id < hi1:
			sum1 += ps.Px[i]
			n1++
		case id >= lo2 && id < hi2:
			sum2 += ps.Px[i]
			n2++
		}
	}
	if n1 == 0 || n2 == 0 {
		t.Fatalf("step %d: beams missing (%d, %d)", step, n1, n2)
	}
	return sum1 / float64(n1), sum2 / float64(n2)
}

func TestBeamDephasingStory(t *testing.T) {
	s, _ := New(smallConfig())
	peak := s.PeakStep()
	last := s.Config().Steps - 1

	m1Peak, m2Peak := beamStats(t, s, peak)
	m1Last, m2Last := beamStats(t, s, last)

	// At the peak, beam 1 leads clearly (paper Fig. 5: much higher
	// acceleration and lower spread at t=27).
	if m1Peak < 1.3*m2Peak {
		t.Fatalf("at peak: beam1 %g not clearly above beam2 %g", m1Peak, m2Peak)
	}
	// After dephasing, beam 1 has decelerated.
	if m1Last >= m1Peak {
		t.Fatalf("beam1 did not decelerate: peak %g, last %g", m1Peak, m1Last)
	}
	// Beam 2 keeps accelerating and ends at or above beam 1.
	if m2Last < m2Peak {
		t.Fatalf("beam2 decelerated: %g -> %g", m2Peak, m2Last)
	}
	if m2Last < m1Last {
		t.Fatalf("beam2 (%g) should end >= beam1 (%g)", m2Last, m1Last)
	}
}

func TestLateThresholdSelectsBothBeams(t *testing.T) {
	s, _ := New(smallConfig())
	last := s.Config().Steps - 1
	ps, _ := s.Step(last)
	lo1, hi1 := s.BeamIDs(1)
	lo2, hi2 := s.BeamIDs(2)
	// The paper's selection: px > 8.872e10 at the final step catches both
	// beams and nothing else (almost).
	thr := 8.0e10
	sel1, sel2, selBg := 0, 0, 0
	for i, id := range ps.ID {
		if ps.Px[i] <= thr {
			continue
		}
		switch {
		case id >= lo1 && id < hi1:
			sel1++
		case id >= lo2 && id < hi2:
			sel2++
		default:
			selBg++
		}
	}
	if sel1 < s.Config().BeamParticles/2 {
		t.Fatalf("threshold misses beam1: %d selected", sel1)
	}
	if sel2 < s.Config().BeamParticles/2 {
		t.Fatalf("threshold misses beam2: %d selected", sel2)
	}
	if selBg > 5 {
		t.Fatalf("threshold selects %d background particles", selBg)
	}
}

func TestBeamSpreadTightensAtPeak(t *testing.T) {
	s, _ := New(smallConfig())
	peak := s.PeakStep()
	lo1, hi1 := s.BeamIDs(1)
	spread := func(step int) float64 {
		ps, _ := s.Step(step)
		var vals []float64
		for i, id := range ps.ID {
			if id >= lo1 && id < hi1 {
				vals = append(vals, ps.Px[i])
			}
		}
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return math.Sqrt(ss/float64(len(vals))) / mean
	}
	if sp, sl := spread(peak), spread(s.Config().Steps-1); sp >= sl {
		t.Fatalf("beam1 relative spread at peak (%g) not below final (%g)", sp, sl)
	}
}

func TestSuprathermalTailSpansDecades(t *testing.T) {
	s, _ := New(smallConfig())
	ps, _ := s.Step(10)
	// Hit counts for decade thresholds must decrease by meaningful factors:
	// this is what the paper's conditional-histogram sweep relies on.
	counts := map[float64]int{}
	for _, thr := range []float64{1e8, 1e9, 1e10} {
		for _, px := range ps.Px {
			if px > thr {
				counts[thr]++
			}
		}
	}
	if !(counts[1e8] > counts[1e9] && counts[1e9] > counts[1e10] && counts[1e10] > 0) {
		t.Fatalf("tail not spanning decades: %v", counts)
	}
}

func TestDim3PopulatesZ(t *testing.T) {
	cfg := smallConfig()
	cfg.Dim = 3
	s, _ := New(cfg)
	ps, _ := s.Step(20)
	var nonzero int
	for _, z := range ps.Z {
		if z != 0 {
			nonzero++
		}
	}
	if nonzero < ps.N()/2 {
		t.Fatalf("3D run has only %d/%d nonzero z", nonzero, ps.N())
	}
	// 2D run keeps z and pz zero.
	s2, _ := New(smallConfig())
	ps2, _ := s2.Step(20)
	for i := range ps2.Z {
		if ps2.Z[i] != 0 || ps2.Pz[i] != 0 {
			t.Fatal("2D run has nonzero z/pz")
		}
	}
}

func TestTrackingConsistency(t *testing.T) {
	// A particle's trajectory queried at two steps via different Step()
	// calls must agree with a fresh simulation instance: tracking is pure.
	s, _ := New(smallConfig())
	psA, _ := s.Step(20)
	fresh, _ := New(smallConfig())
	psB, _ := fresh.Step(20)
	if psA.N() != psB.N() {
		t.Fatal("instances disagree")
	}
	for i := range psA.ID {
		if psA.Px[i] != psB.Px[i] {
			t.Fatal("trajectory not a pure function of (id, t)")
		}
	}
}

func TestWriteDataset(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 4
	cfg.BackgroundPerStep = 500
	cfg.BeamParticles = 20
	dir := t.TempDir()
	var progressCalls int
	ds, err := WriteDataset(dir, cfg, WriteOptions{
		Index:    fastbit.IndexOptions{Bins: 16},
		Progress: func(step, total, particles int) { progressCalls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if progressCalls != 4 {
		t.Fatalf("progress called %d times", progressCalls)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		if !ds.HasIndex(step) {
			t.Fatalf("step %d missing index", step)
		}
		si, err := fastbit.ReadFile(ds.IndexPath(step))
		if err != nil {
			t.Fatal(err)
		}
		f, err := ds.OpenStep(step)
		if err != nil {
			t.Fatal(err)
		}
		if si.N != f.Rows() {
			t.Fatalf("step %d: index N %d != rows %d", step, si.N, f.Rows())
		}
		f.Close()
	}
}

func TestWriteDatasetSkipIndex(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 2
	cfg.BackgroundPerStep = 200
	cfg.BeamParticles = 5
	ds, err := WriteDataset(t.TempDir(), cfg, WriteOptions{SkipIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.HasIndex(0) {
		t.Fatal("index written despite SkipIndex")
	}
}

func TestWriteDatasetBadIndexVar(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 2
	cfg.BackgroundPerStep = 100
	if _, err := WriteDataset(t.TempDir(), cfg, WriteOptions{IndexVars: []string{"nope"}}); err == nil {
		t.Fatal("unknown index var accepted")
	}
}

func TestWriteDatasetBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Steps = 0
	if _, err := WriteDataset(t.TempDir(), cfg, WriteOptions{}); err == nil {
		t.Fatal("bad config accepted")
	}
}
