package ingest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colstore"
	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/obs"
)

// BuilderConfig parameterises a Builder. Zero values take the documented
// defaults.
type BuilderConfig struct {
	// Workers bounds the pool; default 1. Index construction is CPU- and
	// memory-hungry (it reads every indexed column), so the pool is kept
	// small and the backlog queues.
	Workers int
	// MaxAttempts bounds retries per step before the failure is recorded
	// as permanent. Default 5. Fatal errors (fastquery.IsFatal) never
	// retry — they would fail identically every time.
	MaxAttempts int
	// Backoff is the initial retry delay, doubled per attempt. Default
	// 100ms.
	Backoff time.Duration
	// IndexVars lists the variables to index; nil indexes every declared
	// variable except the identifier column.
	IndexVars []string
	// Index holds the bitmap index build parameters.
	Index fastbit.IndexOptions
	// OnPublished, when non-nil, is called after a step's index is
	// published and marked — the serving layer's hot-upgrade hook.
	OnPublished func(step int)
	// OnFailed, when non-nil, is called when a step's index build fails
	// permanently.
	OnFailed func(step int, err error)
	// Logger receives build/retry/failure events; nil discards them.
	Logger *obs.Logger
}

func (c BuilderConfig) withDefaults() BuilderConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	return c
}

// Builder is the bounded background index-builder pool: committed steps
// are enqueued, workers build and atomically publish their sidecar
// indexes, and the catalog is updated so the serving layer can upgrade
// the step from the scan backend to the fastbit backend.
type Builder struct {
	cat *Catalog
	cfg BuilderConfig

	mu      sync.Mutex
	cond    *sync.Cond
	pending []int        // deduplicated work list, step order
	queued  map[int]bool // membership for pending
	stopped bool

	wg       sync.WaitGroup
	building atomic.Int64
	built    atomic.Uint64
	retries  atomic.Uint64
	failures atomic.Uint64
}

// NewBuilder creates a builder over an open catalog. Call Start to spawn
// the worker pool.
func NewBuilder(cat *Catalog, cfg BuilderConfig) *Builder {
	b := &Builder{cat: cat, cfg: cfg.withDefaults(), queued: map[int]bool{}}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Start enqueues every committed-but-unindexed step (crash recovery) and
// spawns the worker pool.
func (b *Builder) Start() {
	for _, t := range b.cat.Pending() {
		b.Enqueue(t)
	}
	for i := 0; i < b.cfg.Workers; i++ {
		b.wg.Add(1)
		go b.worker()
	}
}

// Stop drains the pool: workers finish their current step and exit.
// Pending steps stay in the catalog as unindexed and will be re-enqueued
// by the next Start (possibly after a restart).
func (b *Builder) Stop() {
	b.mu.Lock()
	b.stopped = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.wg.Wait()
}

// Enqueue adds a committed step to the work list (deduplicated; a no-op
// after Stop).
func (b *Builder) Enqueue(step int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped || b.queued[step] {
		return
	}
	b.queued[step] = true
	b.pending = append(b.pending, step)
	sort.Ints(b.pending)
	metricIndexBacklog.Set(float64(len(b.pending)))
	b.cond.Signal()
}

// Backlog returns the number of steps waiting for a worker plus those
// being built right now.
func (b *Builder) Backlog() int {
	b.mu.Lock()
	n := len(b.pending)
	b.mu.Unlock()
	return n + int(b.building.Load())
}

// Stats reports lifetime counters.
func (b *Builder) Stats() (built, retries, failures uint64) {
	return b.built.Load(), b.retries.Load(), b.failures.Load()
}

func (b *Builder) next() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.pending) == 0 && !b.stopped {
		b.cond.Wait()
	}
	if b.stopped {
		return 0, false
	}
	t := b.pending[0]
	b.pending = b.pending[1:]
	delete(b.queued, t)
	metricIndexBacklog.Set(float64(len(b.pending)))
	return t, true
}

func (b *Builder) worker() {
	defer b.wg.Done()
	for {
		t, ok := b.next()
		if !ok {
			return
		}
		b.building.Add(1)
		b.buildWithRetry(t)
		b.building.Add(-1)
	}
}

// sleep waits d or until Stop, whichever comes first; reports whether the
// builder is still running.
func (b *Builder) sleep(d time.Duration) bool {
	deadline := time.Now().Add(d)
	b.mu.Lock()
	defer b.mu.Unlock()
	for !b.stopped {
		remain := time.Until(deadline)
		if remain <= 0 {
			return true
		}
		// Condvars have no timed wait pre-1.22-generics style; poll in
		// short slices so Stop is honored promptly.
		b.mu.Unlock()
		time.Sleep(minDuration(remain, 10*time.Millisecond))
		b.mu.Lock()
	}
	return false
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// buildWithRetry drives one step through build attempts, classifying
// errors: fatal ones (the build would fail identically every time —
// corrupt data, unknown variables) are recorded immediately, transient
// ones retry with exponential backoff up to MaxAttempts.
func (b *Builder) buildWithRetry(t int) {
	backoff := b.cfg.Backoff
	for attempt := 1; ; attempt++ {
		start := time.Now()
		size, err := b.BuildStep(t)
		if err == nil {
			b.built.Add(1)
			metricIndexBuilt.Inc()
			metricIndexSeconds.Observe(time.Since(start).Seconds())
			if b.cfg.Logger != nil {
				b.cfg.Logger.Info("index published", "step", t, "bytes", size, "attempt", attempt)
			}
			if b.cfg.OnPublished != nil {
				b.cfg.OnPublished(t)
			}
			return
		}
		if fastquery.IsFatal(err) || attempt >= b.cfg.MaxAttempts {
			b.failures.Add(1)
			metricIndexFailures.Inc()
			if _, merr := b.cat.MarkIndexFailed(t, err); merr != nil && b.cfg.Logger != nil {
				b.cfg.Logger.Error("record index failure", "step", t, "err", merr)
			}
			if b.cfg.Logger != nil {
				b.cfg.Logger.Error("index build failed permanently",
					"step", t, "attempts", attempt, "err", err)
			}
			if b.cfg.OnFailed != nil {
				b.cfg.OnFailed(t, err)
			}
			return
		}
		b.retries.Add(1)
		metricIndexRetries.Inc()
		if b.cfg.Logger != nil {
			b.cfg.Logger.Info("index build retry", "step", t, "attempt", attempt, "backoff", backoff, "err", err)
		}
		if !b.sleep(backoff) {
			return // stopping; step stays pending in the catalog
		}
		backoff *= 2
	}
}

// BuildStep synchronously builds, publishes, and marks timestep t's
// sidecar index. Exported for the serving layer's on-demand path and for
// deterministic tests; the background pool calls it through
// buildWithRetry. Returns the published index size.
func (b *Builder) BuildStep(t int) (int64, error) {
	man := b.cat.Snapshot()
	if t < 0 || t >= len(man.Steps) {
		return 0, fastquery.Fatalf("ingest: step %d not committed", t)
	}
	entry := man.Steps[t]
	if entry.Indexed {
		return entry.IndexBytes, nil
	}
	// Guard against building from a torn or bit-flipped data file: the
	// data must still match its commit-time checksum. A mismatch is fatal
	// — rereading won't fix the bytes.
	size, crc, err := fileCRC(b.cat.StepPath(t))
	if err != nil {
		return 0, fmt.Errorf("ingest: step %d: %w", t, err)
	}
	if size != entry.DataBytes || crc != entry.DataCRC {
		return 0, fastquery.Fatalf("ingest: step %d data file mismatch (have %d bytes crc %08x, manifest %d bytes crc %08x)",
			t, size, crc, entry.DataBytes, entry.DataCRC)
	}
	f, err := colstore.Open(b.cat.StepPath(t))
	if err != nil {
		return 0, err
	}
	idVar := man.IDVar
	if idVar == "" {
		idVar = "id"
	}
	vars := b.cfg.IndexVars
	if vars == nil {
		for _, name := range f.Columns() {
			if name != idVar {
				vars = append(vars, name)
			}
		}
	}
	cols := map[string][]float64{}
	for _, name := range vars {
		if !f.HasColumn(name) {
			// Deterministic: the column will be missing on every retry.
			f.Close()
			return 0, fastquery.Fatalf("ingest: step %d: no column %q", t, name)
		}
		col, err := f.ReadAsFloat64(name)
		if err != nil {
			f.Close()
			return 0, fmt.Errorf("ingest: step %d: %w", t, err)
		}
		cols[name] = col
	}
	var ids []int64
	if f.HasColumn(idVar) {
		if ids, err = f.ReadInt64(idVar); err != nil {
			f.Close()
			return 0, fmt.Errorf("ingest: step %d: %w", t, err)
		}
	}
	f.Close()
	si, err := fastbit.BuildStepIndex(cols, ids, idVar, b.cfg.Index)
	if err != nil {
		// Build-parameter and shape problems are deterministic.
		return 0, fastquery.Fatal(fmt.Errorf("ingest: step %d: %w", t, err))
	}
	if err := si.WriteFile(b.cat.IndexPath(t)); err != nil {
		return 0, err
	}
	st := int64(si.SizeBytes())
	if _, err := b.cat.MarkIndexed(t, st); err != nil {
		return 0, err
	}
	return st, nil
}
