// Package ingest is the write path that turns the system into a live
// service: a running simulation (or any producer) appends timesteps to a
// dataset that is being served, and a background builder pool constructs
// the FastBit sidecar indexes in situ — the paper's in-transit indexing
// workflow (Section III) — so analysts query data as it arrives.
//
// Three pieces:
//
//   - Catalog — a versioned manifest (catalog.json) listing committed
//     timesteps with per-step checksums and a monotonically increasing
//     generation. Every mutation is an atomic temp+fsync+rename rewrite,
//     like the v3 index files, so a crash at any instant leaves either
//     the old manifest or the new one — never a torn one.
//   - Writer — lands raw columns through colstore.Writer (itself atomic
//     since the same PR) and commits the step to the catalog only after
//     the data file is fsynced and renamed into place.
//   - Builder — a bounded background pool that runs fastbit.BuildStepIndex
//     per committed step with retry/backoff and fatal-vs-retryable
//     classification, publishing each sidecar atomically. A step is
//     queryable via the scan backend the moment it commits and upgrades
//     to the fastbit backend when its index lands.
//
// Commit protocol (crash-recovery matrix in DESIGN.md §11):
//
//	write step_NNNN.col.tmp → fsync → rename   (colstore.Writer.Close)
//	catalog: append entry, generation++        (atomic manifest rewrite)
//	builder: build index → write .idx.tmp → fsync → rename
//	catalog: mark indexed, generation++        (atomic manifest rewrite)
//
// A crash between any two lines recovers on Open: uncommitted data/index
// files beyond the manifest are scrubbed, a published-but-unmarked index
// is re-validated and adopted, and committed-but-unindexed steps are
// re-enqueued by the builder.
package ingest

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/colstore"
	"repro/internal/fastbit"
)

// CatalogFileName is the manifest file inside a dataset directory.
const CatalogFileName = "catalog.json"

const catalogFormat = 1

// StepEntry is one committed timestep in the manifest.
type StepEntry struct {
	Step      int    `json:"step"`
	Rows      uint64 `json:"rows"`
	DataBytes int64  `json:"data_bytes"`
	// DataCRC is the CRC-32/IEEE of the entire data file, recorded at
	// commit time; Catalog.VerifyStep checks it during recovery audits.
	DataCRC uint32 `json:"data_crc"`
	// Gen is the catalog generation at this entry's last state change;
	// the serving layer keys its result cache on it so an index upgrade
	// invalidates exactly this step's entries and nothing else.
	Gen        uint64 `json:"gen"`
	Indexed    bool   `json:"indexed"`
	IndexBytes int64  `json:"index_bytes,omitempty"`
	// IndexError records a permanent (fatal or retries-exhausted) index
	// build failure; the step keeps serving through the scan backend.
	IndexError string `json:"index_error,omitempty"`
}

// Manifest is the decoded catalog.json.
type Manifest struct {
	Format     int         `json:"format"`
	Name       string      `json:"name"`
	Variables  []string    `json:"variables"`
	IDVar      string      `json:"id_var,omitempty"`
	Generation uint64      `json:"generation"`
	Steps      []StepEntry `json:"steps"`
}

// IndexedSteps counts the steps whose sidecar index is published.
func (m Manifest) IndexedSteps() int {
	n := 0
	for i := range m.Steps {
		if m.Steps[i].Indexed {
			n++
		}
	}
	return n
}

// Lag is the index-builder backlog: committed steps minus indexed steps
// (permanent failures count as lag — they are steps the fastbit backend
// cannot serve).
func (m Manifest) Lag() int { return len(m.Steps) - m.IndexedSteps() }

// Catalog is the open, mutable manifest of one live dataset. All methods
// are safe for concurrent use; mutations serialize on an internal lock
// and each one bumps the generation and atomically rewrites catalog.json
// (and the legacy meta.json step count, so offline tools keep working).
type Catalog struct {
	dir string

	mu  sync.Mutex
	man Manifest
}

func catalogPath(dir string) string { return filepath.Join(dir, CatalogFileName) }

// Create initialises a live dataset directory: an empty catalog plus the
// colstore meta.json. It fails if a catalog already exists.
func Create(dir, name string, variables []string, idVar string) (*Catalog, error) {
	if _, err := os.Stat(catalogPath(dir)); err == nil {
		return nil, fmt.Errorf("ingest: catalog already exists in %s", dir)
	}
	if _, err := colstore.CreateDataset(dir, colstore.DatasetMeta{
		Name: name, Steps: 0, Variables: variables,
	}); err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir, man: Manifest{
		Format: catalogFormat, Name: name,
		Variables: append([]string(nil), variables...),
		IDVar:     idVar,
	}}
	if err := c.saveLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Open opens the catalog in dir, running crash recovery (see Recover).
// When no catalog.json exists but a legacy meta.json does, the dataset is
// bootstrapped: every existing step file is checksummed and committed,
// and published indexes are adopted — the one-time migration from an
// offline lwfagen/indexgen directory to a live one.
func Open(dir string) (*Catalog, error) {
	buf, err := os.ReadFile(catalogPath(dir))
	if os.IsNotExist(err) {
		return bootstrap(dir)
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: open catalog: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("ingest: decode catalog: %w", err)
	}
	if man.Format != catalogFormat {
		return nil, fmt.Errorf("ingest: unsupported catalog format %d", man.Format)
	}
	for i, e := range man.Steps {
		if e.Step != i {
			return nil, fmt.Errorf("ingest: catalog step %d out of order at position %d", e.Step, i)
		}
	}
	c := &Catalog{dir: dir, man: man}
	if err := c.recover(); err != nil {
		return nil, err
	}
	return c, nil
}

// bootstrap builds a catalog from a legacy (offline) dataset directory.
func bootstrap(dir string) (*Catalog, error) {
	ds, err := colstore.OpenDataset(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: no catalog and no legacy dataset: %w", err)
	}
	c := &Catalog{dir: dir, man: Manifest{
		Format: catalogFormat, Name: ds.Meta.Name,
		Variables: append([]string(nil), ds.Meta.Variables...),
		IDVar:     "id",
	}}
	for t := 0; t < ds.Meta.Steps; t++ {
		rows, size, crc, err := auditDataFile(ds.StepPath(t))
		if err != nil {
			return nil, fmt.Errorf("ingest: bootstrap step %d: %w", t, err)
		}
		c.man.Generation++
		e := StepEntry{Step: t, Rows: rows, DataBytes: size, DataCRC: crc, Gen: c.man.Generation}
		if rows2, size2, ok := auditIndexFile(ds.IndexPath(t), rows); ok && rows2 == rows {
			e.Indexed, e.IndexBytes = true, size2
		}
		c.man.Steps = append(c.man.Steps, e)
	}
	if err := c.saveLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// recover reconciles the manifest with the directory after a possible
// crash: scrub temp files, scrub orphan data/index files beyond the
// committed range (their commit never happened — they must not be
// mistaken for real data when their step number is reused), and adopt
// published-but-unmarked indexes.
func (c *Catalog) recover() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("ingest: recover: %w", err)
	}
	committed := len(c.man.Steps)
	for _, ent := range ents {
		name := ent.Name()
		if strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(c.dir, name)) //nolint:errcheck // best effort
			continue
		}
		var t int
		if n, _ := fmt.Sscanf(name, "step_%d.col", &t); n == 1 && strings.HasSuffix(name, ".col") && t >= committed {
			os.Remove(filepath.Join(c.dir, name)) //nolint:errcheck // uncommitted orphan
		}
		if n, _ := fmt.Sscanf(name, "step_%d.idx", &t); n == 1 && strings.HasSuffix(name, ".idx") && t >= committed {
			os.Remove(filepath.Join(c.dir, name)) //nolint:errcheck // uncommitted orphan
		}
	}
	dirty := false
	for i := range c.man.Steps {
		e := &c.man.Steps[i]
		if e.Indexed {
			continue
		}
		// Crash window: index published, MarkIndexed lost. Re-validate the
		// sidecar before adopting — a stale or torn file must lose.
		if rows, size, ok := auditIndexFile(filepath.Join(c.dir, colstore.IndexFileName(e.Step)), e.Rows); ok && rows == e.Rows {
			e.Indexed, e.IndexBytes, e.IndexError = true, size, ""
			c.man.Generation++
			e.Gen = c.man.Generation
			dirty = true
		}
	}
	if dirty {
		return c.saveLocked()
	}
	return nil
}

// auditDataFile opens a data file and returns its row count, size and
// whole-file CRC.
func auditDataFile(path string) (rows uint64, size int64, crc uint32, err error) {
	f, err := colstore.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	rows = f.Rows()
	f.Close()
	size, crc, err = fileCRC(path)
	return rows, size, crc, err
}

// auditIndexFile reports whether path holds a readable step index whose
// row count could match wantRows.
func auditIndexFile(path string, wantRows uint64) (rows uint64, size int64, ok bool) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, 0, false
	}
	ls, err := fastbit.OpenLazy(path)
	if err != nil {
		return 0, 0, false
	}
	rows = ls.N()
	ls.Close()
	return rows, st.Size(), rows == wantRows
}

// fileCRC returns a file's size and CRC-32/IEEE of its entire contents.
func fileCRC(path string) (int64, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return n, h.Sum32(), nil
}

// Dir returns the dataset directory.
func (c *Catalog) Dir() string { return c.dir }

// Generation returns the current manifest generation.
func (c *Catalog) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.man.Generation
}

// Snapshot returns a deep copy of the manifest.
func (c *Catalog) Snapshot() Manifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	man := c.man
	man.Variables = append([]string(nil), c.man.Variables...)
	man.Steps = append([]StepEntry(nil), c.man.Steps...)
	return man
}

// NextStep returns the step number the next commit must carry.
func (c *Catalog) NextStep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.man.Steps)
}

// StepPath returns the data file path for timestep t.
func (c *Catalog) StepPath(t int) string {
	return filepath.Join(c.dir, colstore.StepFileName(t))
}

// IndexPath returns the sidecar index path for timestep t.
func (c *Catalog) IndexPath(t int) string {
	return filepath.Join(c.dir, colstore.IndexFileName(t))
}

// Commit appends a step entry to the manifest. The entry's Step must be
// the next step number and its data file must already be durable (the
// Writer guarantees both). The generation advances and the manifest — and
// the legacy meta.json step count — are rewritten atomically before
// Commit returns, so an acknowledged step survives any crash.
func (c *Catalog) Commit(e StepEntry) (gen uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Step != len(c.man.Steps) {
		return 0, fmt.Errorf("ingest: commit step %d out of order (next is %d)", e.Step, len(c.man.Steps))
	}
	c.man.Generation++
	e.Gen = c.man.Generation
	c.man.Steps = append(c.man.Steps, e)
	if err := c.saveLocked(); err != nil {
		// Roll back the in-memory append so the catalog stays consistent
		// with disk and the caller can retry.
		c.man.Steps = c.man.Steps[:len(c.man.Steps)-1]
		c.man.Generation--
		return 0, err
	}
	return c.man.Generation, nil
}

// MarkIndexed records that timestep t's sidecar index is published.
func (c *Catalog) MarkIndexed(t int, indexBytes int64) (gen uint64, err error) {
	return c.updateStep(t, func(e *StepEntry) {
		e.Indexed, e.IndexBytes, e.IndexError = true, indexBytes, ""
	})
}

// MarkIndexFailed records a permanent index build failure for timestep t;
// the step keeps serving through the scan backend.
func (c *Catalog) MarkIndexFailed(t int, cause error) (gen uint64, err error) {
	return c.updateStep(t, func(e *StepEntry) {
		e.Indexed, e.IndexError = false, cause.Error()
	})
}

func (c *Catalog) updateStep(t int, mut func(*StepEntry)) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < 0 || t >= len(c.man.Steps) {
		return 0, fmt.Errorf("ingest: step %d not committed (have %d)", t, len(c.man.Steps))
	}
	prev := c.man.Steps[t]
	c.man.Generation++
	mut(&c.man.Steps[t])
	c.man.Steps[t].Gen = c.man.Generation
	if err := c.saveLocked(); err != nil {
		c.man.Steps[t] = prev
		c.man.Generation--
		return 0, err
	}
	return c.man.Generation, nil
}

// Pending returns the committed steps with no published index and no
// permanent failure — the builder's work list — in step order.
func (c *Catalog) Pending() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i := range c.man.Steps {
		if !c.man.Steps[i].Indexed && c.man.Steps[i].IndexError == "" {
			out = append(out, c.man.Steps[i].Step)
		}
	}
	sort.Ints(out)
	return out
}

// VerifyStep re-checksums timestep t's data file against the manifest.
func (c *Catalog) VerifyStep(t int) error {
	c.mu.Lock()
	if t < 0 || t >= len(c.man.Steps) {
		c.mu.Unlock()
		return fmt.Errorf("ingest: step %d not committed", t)
	}
	e := c.man.Steps[t]
	c.mu.Unlock()
	size, crc, err := fileCRC(c.StepPath(t))
	if err != nil {
		return fmt.Errorf("ingest: verify step %d: %w", t, err)
	}
	if size != e.DataBytes || crc != e.DataCRC {
		return fmt.Errorf("ingest: step %d data file mismatch: have %d bytes crc %08x, manifest says %d bytes crc %08x",
			t, size, crc, e.DataBytes, e.DataCRC)
	}
	return nil
}

// saveLocked rewrites catalog.json and meta.json atomically; the caller
// holds c.mu. catalog.json goes first — it is the source of truth; the
// meta.json step count is a compatibility projection for offline tools.
func (c *Catalog) saveLocked() error {
	buf, err := json.MarshalIndent(&c.man, "", "  ")
	if err != nil {
		return fmt.Errorf("ingest: encode catalog: %w", err)
	}
	if err := colstore.AtomicWriteFile(catalogPath(c.dir), append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("ingest: write catalog: %w", err)
	}
	if _, err := colstore.CreateDataset(c.dir, colstore.DatasetMeta{
		Name:      c.man.Name,
		Steps:     len(c.man.Steps),
		Variables: append([]string(nil), c.man.Variables...),
	}); err != nil {
		return fmt.Errorf("ingest: write meta: %w", err)
	}
	return nil
}

// ReadGeneration reads just the generation from a catalog on disk —
// the cheap poll a serving-side watcher runs between full loads. Returns
// 0 with no error when the catalog does not exist yet.
func ReadGeneration(dir string) (uint64, error) {
	buf, err := os.ReadFile(catalogPath(dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var man struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		return 0, fmt.Errorf("ingest: decode catalog: %w", err)
	}
	return man.Generation, nil
}

// ReadManifest loads a manifest snapshot from disk without opening a
// mutable catalog (no recovery side effects) — the read-only view a
// serving-side watcher uses.
func ReadManifest(dir string) (Manifest, error) {
	var man Manifest
	buf, err := os.ReadFile(catalogPath(dir))
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		return man, fmt.Errorf("ingest: decode catalog: %w", err)
	}
	return man, nil
}
