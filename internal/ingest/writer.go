package ingest

import (
	"fmt"
	"sync"

	"repro/internal/colstore"
)

// Column is one named column of an incoming timestep. Exactly one of
// Float or Int is set; Int columns are stored as int64 (the identifier
// column), Float columns as float64.
type Column struct {
	Name  string    `json:"name"`
	Float []float64 `json:"float,omitempty"`
	Int   []int64   `json:"int,omitempty"`
}

// Writer appends timesteps to a live dataset. One Writer owns the append
// path of its catalog: AppendStep serializes internally, lands the raw
// columns through colstore.Writer (temp + fsync + rename), and commits
// the step to the catalog only after the data file is durable. The
// returned entry is the committed manifest record.
type Writer struct {
	cat       *Catalog
	chunkRows int

	mu sync.Mutex // serializes appends: step numbers must be dense
}

// NewWriter creates a Writer over an open catalog. chunkRows <= 0 selects
// the colstore default.
func NewWriter(cat *Catalog, chunkRows int) *Writer {
	return &Writer{cat: cat, chunkRows: chunkRows}
}

// AppendStep validates cols against the dataset's declared variables,
// writes the next step's data file, and commits it. Every declared
// variable must be present exactly once with the same row count; unknown
// columns are rejected (the schema is fixed at catalog creation).
func (w *Writer) AppendStep(cols []Column) (StepEntry, uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()

	man := w.cat.Snapshot()
	byName := map[string]*Column{}
	for i := range cols {
		c := &cols[i]
		if (c.Float == nil) == (c.Int == nil) {
			return StepEntry{}, 0, fmt.Errorf("ingest: column %q must set exactly one of float/int", c.Name)
		}
		if _, dup := byName[c.Name]; dup {
			return StepEntry{}, 0, fmt.Errorf("ingest: duplicate column %q", c.Name)
		}
		byName[c.Name] = c
	}
	var rows uint64
	first := true
	for _, c := range byName {
		n := uint64(len(c.Float) + len(c.Int))
		if first {
			rows, first = n, false
		} else if n != rows {
			return StepEntry{}, 0, fmt.Errorf("ingest: column %q has %d rows, others have %d", c.Name, len(c.Float)+len(c.Int), rows)
		}
	}
	for _, v := range man.Variables {
		if _, ok := byName[v]; !ok {
			return StepEntry{}, 0, fmt.Errorf("ingest: missing declared variable %q", v)
		}
	}
	if len(byName) != len(man.Variables) {
		for name := range byName {
			known := false
			for _, v := range man.Variables {
				if v == name {
					known = true
					break
				}
			}
			if !known {
				return StepEntry{}, 0, fmt.Errorf("ingest: unknown column %q (declared: %v)", name, man.Variables)
			}
		}
	}

	t := w.cat.NextStep()
	path := w.cat.StepPath(t)
	cw, err := colstore.NewWriter(path, rows, w.chunkRows)
	if err != nil {
		return StepEntry{}, 0, err
	}
	// Store in declared-variable order so live files are column-ordered
	// like lwfagen's.
	for _, v := range man.Variables {
		c := byName[v]
		if c.Int != nil {
			err = cw.AddInt64(c.Name, c.Int)
		} else {
			err = cw.AddFloat64(c.Name, c.Float)
		}
		if err != nil {
			cw.Discard()
			return StepEntry{}, 0, err
		}
	}
	if err := cw.Close(); err != nil {
		return StepEntry{}, 0, err
	}
	size, crc, err := fileCRC(path)
	if err != nil {
		return StepEntry{}, 0, fmt.Errorf("ingest: checksum step %d: %w", t, err)
	}
	entry := StepEntry{Step: t, Rows: rows, DataBytes: size, DataCRC: crc}
	gen, err := w.cat.Commit(entry)
	if err != nil {
		return StepEntry{}, 0, err
	}
	entry.Gen = gen
	metricStepsCommitted.Inc()
	metricRowsCommitted.Add(rows)
	metricBytesCommitted.Add(uint64(size))
	return entry, gen, nil
}
