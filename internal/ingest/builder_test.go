package ingest

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fastquery"
	"repro/internal/query"
)

// waitTimeout fails the test if wg does not finish within d.
func waitTimeout(t *testing.T, wg *sync.WaitGroup, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("timed out waiting")
	}
}

func TestBuilderPublishesAndUpgrades(t *testing.T) {
	cat, w := newLive(t)
	published := make(chan int, 16)
	b := NewBuilder(cat, BuilderConfig{
		Workers:     2,
		OnPublished: func(step int) { published <- step },
	})
	b.Start()
	defer b.Stop()

	const steps = 4
	for i := 0; i < steps; i++ {
		if _, _, err := w.AppendStep(mkColumns(i, 200)); err != nil {
			t.Fatal(err)
		}
		b.Enqueue(i)
	}
	got := map[int]bool{}
	timeout := time.After(10 * time.Second)
	for len(got) < steps {
		select {
		case s := <-published:
			got[s] = true
		case <-timeout:
			t.Fatalf("published %v of %d steps before timeout", got, steps)
		}
	}
	man := cat.Snapshot()
	if man.IndexedSteps() != steps || man.Lag() != 0 {
		t.Fatalf("manifest after builds: indexed=%d lag=%d", man.IndexedSteps(), man.Lag())
	}
	// The published sidecars must actually serve fastbit queries with the
	// same answers as the scan backend.
	src, err := fastquery.Open(cat.Dir())
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.OpenStep(steps - 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.HasIndex() {
		t.Fatal("step has no usable index after publish")
	}
	expr, err := query.Parse("px > 2")
	if err != nil {
		t.Fatal(err)
	}
	nf, err := st.Count(expr, fastquery.FastBit)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := st.Count(expr, fastquery.Scan)
	if err != nil {
		t.Fatal(err)
	}
	if nf != ns {
		t.Fatalf("fastbit count %d != scan count %d", nf, ns)
	}
}

func TestBuilderRecoversPendingOnStart(t *testing.T) {
	cat, w := newLive(t)
	for i := 0; i < 2; i++ {
		if _, _, err := w.AppendStep(mkColumns(i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh builder (as after a restart): Start must pick up the two
	// committed-but-unindexed steps without explicit Enqueue calls.
	b := NewBuilder(cat, BuilderConfig{})
	b.Start()
	defer b.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for cat.Snapshot().Lag() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pending steps not drained: lag=%d", cat.Snapshot().Lag())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBuilderFatalErrorNoRetry(t *testing.T) {
	cat, w := newLive(t)
	if _, _, err := w.AppendStep(mkColumns(0, 30)); err != nil {
		t.Fatal(err)
	}
	var failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	b := NewBuilder(cat, BuilderConfig{
		// Indexing an unknown variable is deterministic — must not retry.
		IndexVars:   []string{"nope"},
		MaxAttempts: 50,
		Backoff:     time.Millisecond,
		OnFailed:    func(step int, err error) { failed.Add(1); wg.Done() },
	})
	b.Start()
	b.Enqueue(0)
	waitTimeout(t, &wg, 10*time.Second)
	b.Stop()
	if failed.Load() != 1 {
		t.Fatalf("OnFailed calls = %d, want 1", failed.Load())
	}
	_, retries, failures := b.Stats()
	if retries != 0 {
		t.Fatalf("fatal error was retried %d times", retries)
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want 1", failures)
	}
	man := cat.Snapshot()
	if man.Steps[0].IndexError == "" || man.Steps[0].Indexed {
		t.Fatalf("permanent failure not recorded: %+v", man.Steps[0])
	}
	// A permanently failed step must not be re-enqueued by recovery.
	if p := cat.Pending(); len(p) != 0 {
		t.Fatalf("failed step still pending: %v", p)
	}
}

func TestBuilderRetriesTransientThenFails(t *testing.T) {
	cat, w := newLive(t)
	if _, _, err := w.AppendStep(mkColumns(0, 30)); err != nil {
		t.Fatal(err)
	}
	// Remove the data file: fileCRC fails with an I/O error, which the
	// classifier treats as possibly transient, so the step retries until
	// MaxAttempts and then records a permanent failure.
	if err := os.Remove(cat.StepPath(0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var lastErr error
	b := NewBuilder(cat, BuilderConfig{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		OnFailed:    func(step int, err error) { lastErr = err; wg.Done() },
	})
	b.Start()
	b.Enqueue(0)
	waitTimeout(t, &wg, 10*time.Second)
	b.Stop()
	_, retries, failures := b.Stats()
	if retries != 2 { // attempts 1 and 2 retried, attempt 3 is final
		t.Fatalf("retries = %d, want 2", retries)
	}
	if failures != 1 || lastErr == nil {
		t.Fatalf("failures = %d, lastErr = %v", failures, lastErr)
	}
	if fastquery.IsFatal(lastErr) {
		t.Fatalf("I/O error misclassified fatal: %v", lastErr)
	}
}

func TestBuilderStopLeavesPending(t *testing.T) {
	cat, w := newLive(t)
	if _, _, err := w.AppendStep(mkColumns(0, 30)); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(cat, BuilderConfig{})
	// Never started: Stop must not hang, and the step stays pending for
	// the next process.
	b.Stop()
	if p := cat.Pending(); len(p) != 1 || p[0] != 0 {
		t.Fatalf("pending after stop = %v", p)
	}
}
