package ingest

import "repro/internal/obs"

// Package-level instruments for the live ingestion pipeline, registered
// in the process-wide registry so /metrics exposes the write path next to
// the scan/fastbit read-path series.
var (
	metricStepsCommitted = obs.Default().Counter("ingest_steps_committed_total",
		"Timesteps durably committed to a live dataset catalog.")
	metricRowsCommitted = obs.Default().Counter("ingest_rows_total",
		"Rows committed through the live ingestion path.")
	metricBytesCommitted = obs.Default().Counter("ingest_bytes_total",
		"Data bytes committed through the live ingestion path.")
	metricIndexBuilt = obs.Default().Counter("ingest_index_built_total",
		"Sidecar indexes published by the background builder pool.")
	metricIndexRetries = obs.Default().Counter("ingest_index_retries_total",
		"Index build attempts that failed transiently and were retried.")
	metricIndexFailures = obs.Default().Counter("ingest_index_failures_total",
		"Index builds that failed permanently (fatal or retries exhausted).")
	metricIndexBacklog = obs.Default().Gauge("ingest_index_backlog",
		"Committed steps currently waiting for an index build worker.")
	metricIndexSeconds = obs.Default().Histogram("ingest_index_build_seconds",
		"Wall time of one successful index build and publish.", nil)
)
