package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/fastquery"
)

var testVars = []string{"x", "px", "id"}

// mkColumns builds one synthetic timestep with rows rows; values vary
// with step so checksums differ per step.
func mkColumns(step, rows int) []Column {
	x := make([]float64, rows)
	px := make([]float64, rows)
	ids := make([]int64, rows)
	for i := range x {
		x[i] = float64(step*rows + i)
		px[i] = float64(i%7) - float64(step)
		ids[i] = int64(i + 1)
	}
	return []Column{
		{Name: "x", Float: x},
		{Name: "px", Float: px},
		{Name: "id", Int: ids},
	}
}

func newLive(t *testing.T) (*Catalog, *Writer) {
	t.Helper()
	dir := t.TempDir()
	cat, err := Create(dir, "live-test", testVars, "id")
	if err != nil {
		t.Fatal(err)
	}
	return cat, NewWriter(cat, 64)
}

func TestCatalogCommitAndReload(t *testing.T) {
	cat, w := newLive(t)
	if got := cat.Generation(); got != 0 {
		t.Fatalf("fresh catalog generation = %d", got)
	}
	for i := 0; i < 3; i++ {
		e, gen, err := w.AppendStep(mkColumns(i, 100))
		if err != nil {
			t.Fatal(err)
		}
		if e.Step != i || e.Rows != 100 || gen != uint64(i+1) {
			t.Fatalf("step %d: entry %+v gen %d", i, e, gen)
		}
	}
	// The legacy meta.json must track the step count so offline tools
	// (and fastquery.Open) see the grown dataset.
	ds, err := colstore.OpenDataset(cat.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Meta.Steps != 3 {
		t.Fatalf("meta.json steps = %d, want 3", ds.Meta.Steps)
	}
	// Reopen: recovery must be a no-op on a clean directory.
	cat2, err := Open(cat.Dir())
	if err != nil {
		t.Fatal(err)
	}
	man := cat2.Snapshot()
	if man.Generation != 3 || len(man.Steps) != 3 || man.IndexedSteps() != 0 || man.Lag() != 3 {
		t.Fatalf("reloaded manifest: %+v", man)
	}
	for i, e := range man.Steps {
		if e.Step != i || e.DataCRC == 0 || e.DataBytes == 0 {
			t.Fatalf("entry %d incomplete: %+v", i, e)
		}
		if err := cat2.VerifyStep(i); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriterValidatesSchema(t *testing.T) {
	_, w := newLive(t)
	cases := []struct {
		name string
		cols []Column
		want string
	}{
		{"missing var", []Column{{Name: "x", Float: []float64{1}}, {Name: "id", Int: []int64{1}}}, "missing declared variable"},
		{"unknown var", append(mkColumns(0, 2), Column{Name: "zz", Float: []float64{1, 2}}), "unknown column"},
		{"dup", append(mkColumns(0, 2), Column{Name: "x", Float: []float64{1, 2}}), "duplicate column"},
		{"ragged", []Column{{Name: "x", Float: []float64{1}}, {Name: "px", Float: []float64{1, 2}}, {Name: "id", Int: []int64{1}}}, "rows"},
		{"both set", []Column{{Name: "x", Float: []float64{1}, Int: []int64{1}}, {Name: "px", Float: []float64{1}}, {Name: "id", Int: []int64{1}}}, "exactly one"},
	}
	for _, tc := range cases {
		if _, _, err := w.AppendStep(tc.cols); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	// No partial files may remain, and a valid append must still work.
	if _, _, err := w.AppendStep(mkColumns(0, 10)); err != nil {
		t.Fatal(err)
	}
	man := w.cat.Snapshot()
	if len(man.Steps) != 1 {
		t.Fatalf("committed steps = %d, want 1", len(man.Steps))
	}
}

func TestBootstrapFromLegacyDataset(t *testing.T) {
	// A dataset with meta.json only (lwfagen-style): Open must bootstrap
	// a catalog, committing existing steps and adopting their indexes.
	dir := t.TempDir()
	cat, err := Create(dir, "seed", testVars, "id")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(cat, 0)
	for i := 0; i < 2; i++ {
		if _, _, err := w.AppendStep(mkColumns(i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	b := NewBuilder(cat, BuilderConfig{})
	if _, err := b.BuildStep(0); err != nil {
		t.Fatal(err)
	}
	// Drop the catalog, keeping data/index/meta — the legacy layout.
	if err := os.Remove(filepath.Join(dir, CatalogFileName)); err != nil {
		t.Fatal(err)
	}
	cat2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := cat2.Snapshot()
	if len(man.Steps) != 2 {
		t.Fatalf("bootstrap committed %d steps, want 2", len(man.Steps))
	}
	if !man.Steps[0].Indexed || man.Steps[1].Indexed {
		t.Fatalf("bootstrap index adoption wrong: %+v", man.Steps)
	}
	if man.Generation == 0 {
		t.Fatal("bootstrap left generation at 0")
	}
}

func TestCommitOutOfOrderRejected(t *testing.T) {
	cat, _ := newLive(t)
	if _, err := cat.Commit(StepEntry{Step: 3}); err == nil {
		t.Fatal("out-of-order commit accepted")
	}
	if _, err := cat.MarkIndexed(0, 1); err == nil {
		t.Fatal("MarkIndexed on uncommitted step accepted")
	}
}

func TestReadGenerationAndManifest(t *testing.T) {
	cat, w := newLive(t)
	if g, err := ReadGeneration(cat.Dir()); err != nil || g != 0 {
		t.Fatalf("ReadGeneration = %d, %v", g, err)
	}
	if _, _, err := w.AppendStep(mkColumns(0, 5)); err != nil {
		t.Fatal(err)
	}
	if g, err := ReadGeneration(cat.Dir()); err != nil || g != 1 {
		t.Fatalf("ReadGeneration after commit = %d, %v", g, err)
	}
	man, err := ReadManifest(cat.Dir())
	if err != nil || len(man.Steps) != 1 {
		t.Fatalf("ReadManifest = %+v, %v", man, err)
	}
	// Missing directory: generation 0, no error (the watcher's cold path).
	if g, err := ReadGeneration(t.TempDir()); err != nil || g != 0 {
		t.Fatalf("ReadGeneration(empty) = %d, %v", g, err)
	}
}

// TestCrashRecoveryMatrix walks the commit protocol's crash windows and
// checks each one recovers to a consistent catalog on Open.
func TestCrashRecoveryMatrix(t *testing.T) {
	t.Run("data file written, commit lost", func(t *testing.T) {
		cat, w := newLive(t)
		if _, _, err := w.AppendStep(mkColumns(0, 20)); err != nil {
			t.Fatal(err)
		}
		// Simulate: step 1's data file renamed into place but the catalog
		// append never happened.
		src := cat.StepPath(0)
		orphan := cat.StepPath(1)
		buf, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(orphan, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		cat2, err := Open(cat.Dir())
		if err != nil {
			t.Fatal(err)
		}
		if n := len(cat2.Snapshot().Steps); n != 1 {
			t.Fatalf("recovered catalog has %d steps, want 1", n)
		}
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Fatalf("orphan data file survived recovery (err=%v)", err)
		}
		// The reused step number must land cleanly.
		if e, _, err := NewWriter(cat2, 0).AppendStep(mkColumns(1, 30)); err != nil || e.Step != 1 {
			t.Fatalf("re-append after recovery: %+v, %v", e, err)
		}
	})

	t.Run("index published, mark lost", func(t *testing.T) {
		cat, w := newLive(t)
		if _, _, err := w.AppendStep(mkColumns(0, 20)); err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(cat, BuilderConfig{})
		if _, err := b.BuildStep(0); err != nil {
			t.Fatal(err)
		}
		// Rewind the manifest to before MarkIndexed: kill -9 between index
		// publish and catalog update.
		if _, err := cat.updateStep(0, func(e *StepEntry) { e.Indexed, e.IndexBytes = false, 0 }); err != nil {
			t.Fatal(err)
		}
		cat2, err := Open(cat.Dir())
		if err != nil {
			t.Fatal(err)
		}
		man := cat2.Snapshot()
		if !man.Steps[0].Indexed {
			t.Fatalf("published index not adopted on recovery: %+v", man.Steps[0])
		}
	})

	t.Run("temp files scrubbed", func(t *testing.T) {
		cat, w := newLive(t)
		if _, _, err := w.AppendStep(mkColumns(0, 20)); err != nil {
			t.Fatal(err)
		}
		for _, junk := range []string{"step_0001.col.tmp123", "step_0000.idx.tmp9", "catalog.json.tmpx"} {
			if err := os.WriteFile(filepath.Join(cat.Dir(), junk), []byte("torn"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Open(cat.Dir()); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(cat.Dir())
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.Contains(e.Name(), ".tmp") {
				t.Fatalf("temp file %q survived recovery", e.Name())
			}
		}
	})

	t.Run("stale index for uncommitted step scrubbed", func(t *testing.T) {
		// An index published for a step whose data commit was lost must be
		// deleted: when the step number is reused with different data, a
		// stale sidecar with a coincidentally matching row count would
		// serve silently wrong fastbit results.
		cat, w := newLive(t)
		if _, _, err := w.AppendStep(mkColumns(0, 20)); err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(cat, BuilderConfig{})
		if _, err := b.BuildStep(0); err != nil {
			t.Fatal(err)
		}
		stale := cat.IndexPath(1)
		buf, err := os.ReadFile(cat.IndexPath(0))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(stale, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(cat.Dir()); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Fatalf("stale orphan index survived recovery (err=%v)", err)
		}
	})

	t.Run("corrupt data detected by builder", func(t *testing.T) {
		cat, w := newLive(t)
		if _, _, err := w.AppendStep(mkColumns(0, 20)); err != nil {
			t.Fatal(err)
		}
		// Flip a byte after commit: the builder must refuse (fatal) rather
		// than index corrupt data.
		path := cat.StepPath(0)
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[len(buf)/2] ^= 0xff
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(cat, BuilderConfig{})
		_, err = b.BuildStep(0)
		if err == nil {
			t.Fatal("builder indexed a corrupt data file")
		}
		if !fastquery.IsFatal(err) {
			t.Fatalf("corruption not classified fatal: %v", err)
		}
		if err := cat.VerifyStep(0); err == nil {
			t.Fatal("VerifyStep missed the corruption")
		}
	})
}
