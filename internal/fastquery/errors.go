package fastquery

import (
	"errors"
	"fmt"
	"strings"
)

// This file classifies errors into fatal (deterministic: the request itself
// is invalid, retrying or failing over cannot help) and retryable (possibly
// transient: I/O trouble, a dying worker). The distinction drives the
// cluster layer's retry and failover decisions.
//
// Errors that cross a net/rpc boundary are flattened to strings
// (rpc.ServerError), so the classification must survive stringification:
// fatal errors carry a message prefix as well as a wrapper type.

// fatalPrefix marks fatal errors in a way that survives the net/rpc
// string round-trip.
const fatalPrefix = "fatal: "

type fatalError struct{ err error }

func (e *fatalError) Error() string { return fatalPrefix + e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// Fatal marks err as fatal: the request is invalid and will fail the same
// way on every worker, so callers should not retry or fail over. Fatal is
// idempotent and returns nil for a nil error.
func Fatal(err error) error {
	if err == nil || IsFatal(err) {
		return err
	}
	return &fatalError{err: err}
}

// Fatalf formats a new fatal error.
func Fatalf(format string, a ...any) error {
	return Fatal(fmt.Errorf(format, a...))
}

// IsFatal reports whether err (or anything it wraps) is marked fatal. The
// check works both on in-process error chains and on errors that crossed a
// net/rpc boundary, where only the message string survives.
func IsFatal(err error) bool {
	if err == nil {
		return false
	}
	var fe *fatalError
	if errors.As(err, &fe) {
		return true
	}
	return strings.Contains(err.Error(), fatalPrefix)
}

// exhaustedPrefix marks deadline-budget exhaustion in a way that survives
// the net/rpc string round-trip, like fatalPrefix.
const exhaustedPrefix = "budget exhausted: "

type exhaustedError struct{ err error }

func (e *exhaustedError) Error() string { return exhaustedPrefix + e.err.Error() }
func (e *exhaustedError) Unwrap() error { return e.err }

// Exhausted marks err as deadline-budget exhaustion: the request ran out
// of the time budget it was given, so retrying or failing over cannot help
// (no replica can conjure more time), but unlike a fatal error the request
// itself was sound — the serving tier turns this into a marked-partial
// answer rather than a failure. Exhausted is idempotent and returns nil
// for a nil error.
func Exhausted(err error) error {
	if err == nil || IsExhausted(err) {
		return err
	}
	return &exhaustedError{err: err}
}

// Exhaustedf formats a new budget-exhausted error.
func Exhaustedf(format string, a ...any) error {
	return Exhausted(fmt.Errorf(format, a...))
}

// IsExhausted reports whether err (or anything it wraps) is marked as
// deadline-budget exhaustion, surviving the net/rpc string flattening the
// same way IsFatal does.
func IsExhausted(err error) bool {
	if err == nil {
		return false
	}
	var ee *exhaustedError
	if errors.As(err, &ee) {
		return true
	}
	return strings.Contains(err.Error(), exhaustedPrefix)
}
