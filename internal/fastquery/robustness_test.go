package fastquery

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/fastbit"
	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/sim"
)

// Cancellation and corruption behaviour of the query layer: a canceled
// context stops backend work, and a damaged sidecar index degrades a step
// to the scan backend instead of failing it.

func TestCanceledContextStopsQueries(t *testing.T) {
	src := testSource(t)
	st, err := src.OpenStep(2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	e := query.MustParse("px > 0")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, b := range []Backend{FastBit, Scan} {
		name := b.String()
		if _, err := st.CountCtx(ctx, e, b); !errors.Is(err, context.Canceled) {
			t.Errorf("%s CountCtx: err = %v, want context.Canceled", name, err)
		}
		if _, err := st.SelectCtx(ctx, e, b); !errors.Is(err, context.Canceled) {
			t.Errorf("%s SelectCtx: err = %v, want context.Canceled", name, err)
		}
		if _, err := st.Histogram2DCtx(ctx, e, histogram.NewSpec2D("x", "px", 16, 16), b); !errors.Is(err, context.Canceled) {
			t.Errorf("%s Histogram2DCtx: err = %v, want context.Canceled", name, err)
		}
	}
	if _, err := st.Histogram2DParallelCtx(ctx, e, histogram.NewSpec2D("x", "px", 16, 16), 2); !errors.Is(err, context.Canceled) {
		t.Errorf("Histogram2DParallelCtx: err = %v, want context.Canceled", err)
	}

	// The same calls with a live context still work: cancellation checks
	// must not have broken the happy path.
	if n, err := st.CountCtx(context.Background(), e, Scan); err != nil || n == 0 {
		t.Fatalf("live CountCtx = %d, %v", n, err)
	}
}

// corruptibleDataset writes a private dataset the test can damage without
// affecting the package's shared fixture.
func corruptibleDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := sim.DefaultConfig()
	cfg.Steps = 2
	cfg.BackgroundPerStep = 1500
	cfg.BeamParticles = 30
	if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 32},
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestTruncatedIndexFallsBackToScan(t *testing.T) {
	dir := corruptibleDataset(t)
	e := query.MustParse("px > 0")

	// Baseline with healthy indexes: both backends agree.
	src, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idxPath := src.Dataset().IndexPath(0)
	st, err := src.OpenStep(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Count(e, FastBit)
	if err != nil || want == 0 {
		t.Fatalf("baseline count = %d, %v", want, err)
	}
	st.Close()
	src.Close()

	fi, err := os.Stat(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(idxPath, fi.Size()/3); err != nil {
		t.Fatal(err)
	}

	src2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	st0, err := src2.OpenStep(0)
	if err != nil {
		t.Fatalf("OpenStep on truncated index: %v (want fallback, not failure)", err)
	}
	defer st0.Close()
	if st0.HasIndex() {
		t.Fatal("truncated index still reported available")
	}
	if st0.IndexError() == nil {
		t.Fatal("IndexError nil for rejected index")
	}

	// Scan queries keep working and agree with the pre-damage answer.
	got, err := st0.Count(e, Scan)
	if err != nil || got != want {
		t.Fatalf("scan count after truncation = %d, %v; want %d", got, err, want)
	}

	// FastBit requests get a clear, fatal (non-retryable) explanation.
	_, err = st0.Count(e, FastBit)
	if err == nil || !strings.Contains(err.Error(), "index unavailable") {
		t.Fatalf("fastbit count after truncation: err = %v, want index-unavailable", err)
	}
	if !IsFatal(err) {
		t.Fatalf("index-unavailable error not fatal-classified: %v", err)
	}

	// The failure is recorded where /v1/stats can surface it.
	fails := src2.IndexFailures()
	if len(fails) != 1 || fails[0].Step != 0 || fails[0].Reason == "" {
		t.Fatalf("IndexFailures = %+v, want one entry for step 0", fails)
	}

	// The undamaged step is unaffected.
	st1, err := src2.OpenStep(1)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	if !st1.HasIndex() {
		t.Fatal("healthy step lost its index")
	}
}

func TestBitFlippedIndexFallsBackToScan(t *testing.T) {
	dir := corruptibleDataset(t)
	e := query.MustParse("px > 0")

	src, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	idxPath := src.Dataset().IndexPath(1)
	st, err := src.OpenStep(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.Count(e, Scan)
	if err != nil || want == 0 {
		t.Fatalf("baseline count = %d, %v", want, err)
	}
	st.Close()
	src.Close()

	// Flip a byte in the directory region: the header checksummed layout
	// rejects the file at open, like a truncation would.
	raw, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[20] ^= 0xff // inside the section directory, past magic/version/N
	if err := os.WriteFile(idxPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	src2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	st1, err := src2.OpenStep(1)
	if err != nil {
		t.Fatalf("OpenStep on bit-flipped index: %v (want fallback, not failure)", err)
	}
	defer st1.Close()

	// Whether the flip was caught at open (index disabled) or deferred to
	// section load, the step must never panic and scan must stay correct.
	got, err := st1.Count(e, Scan)
	if err != nil || got != want {
		t.Fatalf("scan count after bit flip = %d, %v; want %d", got, err, want)
	}
	if st1.HasIndex() {
		// Open-time checks passed; the CRC must catch it at query time.
		if _, err := st1.Count(e, FastBit); err == nil {
			t.Fatal("fastbit query on bit-flipped index succeeded")
		}
	} else if st1.IndexError() == nil {
		t.Fatal("index disabled but IndexError nil")
	}
}
