package fastquery

import (
	"testing"

	"repro/internal/fastbit"
	"repro/internal/query"
	"repro/internal/sim"
)

func TestBuildIndexes(t *testing.T) {
	dir := t.TempDir()
	cfg := sim.DefaultConfig()
	cfg.Steps = 3
	cfg.BackgroundPerStep = 800
	cfg.BeamParticles = 20
	if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{SkipIndex: true}); err != nil {
		t.Fatal(err)
	}
	var indexed, skipped int
	err := BuildIndexes(dir, IndexOptions{
		Index: fastbit.IndexOptions{Bins: 16},
		Progress: func(step, total, bytes int) {
			if bytes < 0 {
				skipped++
			} else {
				indexed++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if indexed != 3 || skipped != 0 {
		t.Fatalf("indexed=%d skipped=%d", indexed, skipped)
	}
	// The FastBit backend now answers, and agrees with the scan.
	src, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.OpenStep(2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.HasIndex() {
		t.Fatal("index not picked up")
	}
	e := query.MustParse("px > 1e9")
	fb, err := st.Select(e, FastBit)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := st.Select(e, Scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) != len(sc) {
		t.Fatalf("backends disagree after indexgen: %d vs %d", len(fb), len(sc))
	}
	// ID index works.
	if _, err := st.FindIDs([]int64{1, 2, 3}, FastBit); err != nil {
		t.Fatal(err)
	}

	// Second run skips everything.
	indexed, skipped = 0, 0
	err = BuildIndexes(dir, IndexOptions{
		Index: fastbit.IndexOptions{Bins: 16},
		Progress: func(step, total, bytes int) {
			if bytes < 0 {
				skipped++
			} else {
				indexed++
			}
		},
	})
	if err != nil || indexed != 0 || skipped != 3 {
		t.Fatalf("re-run: indexed=%d skipped=%d err=%v", indexed, skipped, err)
	}

	// Force rebuilds with a subset of variables.
	err = BuildIndexes(dir, IndexOptions{
		Vars:  []string{"px"},
		Index: fastbit.IndexOptions{Bins: 8},
		Force: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := src.OpenStep(0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Select(query.MustParse("px > 0"), FastBit); err != nil {
		t.Fatal(err)
	}
	// Unindexed variable now fails on the FastBit backend.
	if _, err := st2.Select(query.MustParse("y > 0"), FastBit); err == nil {
		t.Fatal("unindexed variable answered by FastBit backend")
	}
}

func TestBuildIndexesBadInput(t *testing.T) {
	if err := BuildIndexes(t.TempDir(), IndexOptions{}); err == nil {
		t.Fatal("missing dataset accepted")
	}
	dir := t.TempDir()
	cfg := sim.DefaultConfig()
	cfg.Steps = 2
	cfg.BackgroundPerStep = 100
	cfg.BeamParticles = 5
	if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{SkipIndex: true}); err != nil {
		t.Fatal(err)
	}
	if err := BuildIndexes(dir, IndexOptions{Vars: []string{"nope"}}); err == nil {
		t.Fatal("unknown variable accepted")
	}
}
