package fastquery

import (
	"os"
	"sync"
	"testing"

	"repro/internal/fastbit"
	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/sim"
)

// sharedDataset generates one small dataset for all tests in the package.
var (
	datasetOnce sync.Once
	datasetDir  string
	datasetErr  error
)

func testSource(t *testing.T) *Source {
	t.Helper()
	datasetOnce.Do(func() {
		dir, err := os.MkdirTemp("", "fastquery-test-*")
		if err != nil {
			datasetErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Steps = 6
		cfg.BackgroundPerStep = 3000
		cfg.BeamParticles = 60
		_, datasetErr = sim.WriteDataset(dir, cfg, sim.WriteOptions{
			Index: fastbit.IndexOptions{Bins: 64},
		})
		datasetDir = dir
	})
	if datasetErr != nil {
		t.Fatal(datasetErr)
	}
	src, err := Open(datasetDir)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestMain(m *testing.M) {
	code := m.Run()
	if datasetDir != "" {
		os.RemoveAll(datasetDir)
	}
	os.Exit(code)
}

func TestOpenAndMeta(t *testing.T) {
	src := testSource(t)
	if src.Steps() != 6 {
		t.Fatalf("Steps = %d", src.Steps())
	}
	vars := src.Variables()
	if len(vars) == 0 {
		t.Fatal("no variables")
	}
	if src.Dataset() == nil {
		t.Fatal("nil dataset")
	}
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestStepBasics(t *testing.T) {
	src := testSource(t)
	st, err := src.OpenStep(3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.T() != 3 {
		t.Fatalf("T = %d", st.T())
	}
	if st.Rows() == 0 {
		t.Fatal("no rows")
	}
	if !st.HasIndex() {
		t.Fatal("index not loaded")
	}
	col, err := st.ReadColumn("px")
	if err != nil || uint64(len(col)) != st.Rows() {
		t.Fatalf("ReadColumn: %d values, %v", len(col), err)
	}
	ids, err := st.ReadIDs()
	if err != nil || uint64(len(ids)) != st.Rows() {
		t.Fatalf("ReadIDs: %d values, %v", len(ids), err)
	}
	if _, err := src.OpenStep(99); err == nil {
		t.Fatal("bad step accepted")
	}
}

func TestBackendsAgreeOnSelect(t *testing.T) {
	src := testSource(t)
	st, err := src.OpenStep(5)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, q := range []string{
		"px > 1e9",
		"px > 1e9 && y > 0",
		"px > 5e10 || px < -2e8",
		"xrel > -5e-5 && px > 1e8",
	} {
		e := query.MustParse(q)
		fb, err := st.Select(e, FastBit)
		if err != nil {
			t.Fatalf("%q fastbit: %v", q, err)
		}
		sc, err := st.Select(e, Scan)
		if err != nil {
			t.Fatalf("%q scan: %v", q, err)
		}
		if len(fb) != len(sc) {
			t.Fatalf("%q: fastbit %d vs scan %d hits", q, len(fb), len(sc))
		}
		for i := range fb {
			if fb[i] != sc[i] {
				t.Fatalf("%q: hit %d differs", q, i)
			}
		}
	}
}

func TestBackendsAgreeOnCount(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(4)
	defer st.Close()
	e := query.MustParse("px > 1e9")
	a, err := st.Count(e, FastBit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Count(e, Scan)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("counts differ: %d vs %d", a, b)
	}
}

func TestBackendsAgreeOnSelectIDs(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(5)
	defer st.Close()
	e := query.MustParse("px > 5e10")
	a, err := st.SelectIDs(e, FastBit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.SelectIDs(e, Scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no beam particles selected; check sim thresholds")
	}
	if len(a) != len(b) {
		t.Fatalf("id counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBackendsAgreeOnFindIDs(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(5)
	defer st.Close()
	ids, err := st.SelectIDs(query.MustParse("px > 5e10"), FastBit)
	if err != nil {
		t.Fatal(err)
	}
	search := append(ids[:10:10], -1, -2) // include misses
	a, err := st.FindIDs(search, FastBit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.FindIDs(search, Scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("FindIDs: %d / %d hits, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("FindIDs position %d differs", i)
		}
	}
}

func TestBackendsAgreeOnHistogram2D(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(5)
	defer st.Close()
	// Fixed ranges so both backends bin identically.
	lo, hi, err := st.MinMax("px")
	if err != nil {
		t.Fatal(err)
	}
	xlo, xhi, err := st.MinMax("x")
	if err != nil {
		t.Fatal(err)
	}
	spec := histogram.NewSpec2D("x", "px", 24, 24).WithXRange(xlo, xhi).WithYRange(lo, hi)

	for _, cond := range []query.Expr{nil, query.MustParse("px > 1e9")} {
		a, err := st.Histogram2D(cond, spec, FastBit)
		if err != nil {
			t.Fatal(err)
		}
		b, err := st.Histogram2D(cond, spec, Scan)
		if err != nil {
			t.Fatal(err)
		}
		if a.Total() != b.Total() {
			t.Fatalf("totals differ: %d vs %d", a.Total(), b.Total())
		}
		for i := range a.Counts {
			if a.Counts[i] != b.Counts[i] {
				t.Fatalf("bin %d differs: %d vs %d", i, a.Counts[i], b.Counts[i])
			}
		}
	}
}

func TestBackendsAgreeOnAdaptiveHistogram(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(5)
	defer st.Close()
	lo, hi, _ := st.MinMax("px")
	xlo, xhi, _ := st.MinMax("x")
	spec := histogram.NewSpec2D("x", "px", 8, 8).
		WithBinning(histogram.Adaptive).WithXRange(xlo, xhi).WithYRange(lo, hi)
	a, err := st.Histogram2D(nil, spec, FastBit)
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Histogram2D(nil, spec, Scan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.XEdges {
		if a.XEdges[i] != b.XEdges[i] {
			t.Fatalf("adaptive x edge %d differs: %g vs %g", i, a.XEdges[i], b.XEdges[i])
		}
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("adaptive bin %d differs", i)
		}
	}
}

func TestBackendsAgreeOnHistogram1D(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(4)
	defer st.Close()
	lo, hi, _ := st.MinMax("px")
	spec := histogram.Spec1D{Var: "px", Bins: 40, Lo: lo, Hi: hi}
	for _, cond := range []query.Expr{nil, query.MustParse("y > 0")} {
		a, err := st.Histogram1D(cond, spec, FastBit)
		if err != nil {
			t.Fatal(err)
		}
		b, err := st.Histogram1D(cond, spec, Scan)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Counts {
			if a.Counts[i] != b.Counts[i] {
				t.Fatalf("1D bin %d differs: %d vs %d", i, a.Counts[i], b.Counts[i])
			}
		}
	}
}

func TestScanBackendWorksWithoutIndex(t *testing.T) {
	dir := t.TempDir()
	cfg := sim.DefaultConfig()
	cfg.Steps = 2
	cfg.BackgroundPerStep = 500
	cfg.BeamParticles = 10
	if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{SkipIndex: true}); err != nil {
		t.Fatal(err)
	}
	src, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.OpenStep(1)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.HasIndex() {
		t.Fatal("index reported without index file")
	}
	if _, err := st.Select(query.MustParse("px > 0"), Scan); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Select(query.MustParse("px > 0"), FastBit); err == nil {
		t.Fatal("FastBit backend worked without index")
	}
	if _, err := st.FindIDs([]int64{1}, FastBit); err == nil {
		t.Fatal("FastBit FindIDs worked without index")
	}
	if _, err := st.Histogram2D(nil, histogram.NewSpec2D("x", "px", 4, 4), FastBit); err == nil {
		t.Fatal("FastBit histogram worked without index")
	}
}

func TestUnknownBackend(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(0)
	defer st.Close()
	e := query.MustParse("px > 0")
	if _, err := st.Select(e, Backend(42)); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := st.FindIDs([]int64{1}, Backend(42)); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := st.Histogram2D(nil, histogram.NewSpec2D("x", "px", 4, 4), Backend(42)); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := st.Histogram1D(nil, histogram.NewSpec1D("px", 4), Backend(42)); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if Backend(42).String() == "" || FastBit.String() != "fastbit" || Scan.String() != "custom" {
		t.Fatal("Backend.String wrong")
	}
}

func TestIOBytesGrows(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(2)
	defer st.Close()
	before := st.IOBytes()
	if _, err := st.ReadColumn("px"); err != nil {
		t.Fatal(err)
	}
	if st.IOBytes() <= before {
		t.Fatal("IOBytes did not grow after a read")
	}
}

func TestMinMaxPrefersIndex(t *testing.T) {
	src := testSource(t)
	st, _ := src.OpenStep(2)
	defer st.Close()
	before := st.IOBytes()
	lo, hi, err := st.MinMax("px")
	if err != nil {
		t.Fatal(err)
	}
	if st.IOBytes() != before {
		t.Fatal("MinMax read data despite index")
	}
	if !(lo < hi) {
		t.Fatalf("MinMax = %g, %g", lo, hi)
	}
	if _, _, err := st.MinMax("nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestHistogram2DParallelMatchesSerial(t *testing.T) {
	src := testSource(t)
	st, err := src.OpenStep(5)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cond := query.MustParse("px > 1e9")
	spec := histogram.NewSpec2D("x", "px", 32, 32)
	serial, err := st.Histogram2D(cond, spec, Scan)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		par, err := st.Histogram2DParallel(cond, spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Total() != serial.Total() {
			t.Fatalf("workers=%d: total %d vs %d", workers, par.Total(), serial.Total())
		}
		for i := range serial.Counts {
			if par.Counts[i] != serial.Counts[i] {
				t.Fatalf("workers=%d: bin %d differs", workers, i)
			}
		}
	}
	if _, err := st.Histogram2DParallel(query.MustParse("zz > 0"), spec, 2); err == nil {
		t.Fatal("bad condition accepted")
	}
}
