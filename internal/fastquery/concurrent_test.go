package fastquery

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/histogram"
	"repro/internal/query"
)

// TestConcurrentReaders exercises the documented concurrent-reader
// guarantee: many goroutines sharing one Source and one Step, running
// queries and 2D histograms on both backends at once. Run under -race
// this doubles as the data-race proof for the serving layer, which shares
// open Steps across HTTP requests.
func TestConcurrentReaders(t *testing.T) {
	src := testSource(t)
	defer src.Close()
	shared, err := src.OpenStep(2)
	if err != nil {
		t.Fatal(err)
	}
	defer shared.Close()

	expr, err := query.Parse("px > 0 && x > 0.2")
	if err != nil {
		t.Fatal(err)
	}
	spec := histogram.NewSpec2D("x", "px", 24, 24)

	// Reference results, computed serially.
	wantCount, err := shared.Count(expr, FastBit)
	if err != nil {
		t.Fatal(err)
	}
	wantHist, err := shared.Histogram2D(expr, spec, FastBit)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			backend := FastBit
			if w%2 == 1 {
				backend = Scan
			}
			// Odd workers open their own Step from the shared Source;
			// even workers use the shared Step directly.
			st := shared
			if w%4 >= 2 {
				own, err := src.OpenStep(2)
				if err != nil {
					t.Error(err)
					return
				}
				defer own.Close()
				st = own
			}
			for i := 0; i < iters; i++ {
				n, err := st.Count(expr, backend)
				if err != nil {
					t.Error(err)
					return
				}
				if n != wantCount {
					t.Errorf("worker %d: count %d, want %d", w, n, wantCount)
					return
				}
				h, err := st.Histogram2D(expr, spec, backend)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(h.Counts, wantHist.Counts) {
					t.Errorf("worker %d: histogram diverged", w)
					return
				}
			}
		}()
	}
	wg.Wait()
}
