package fastquery

import (
	"errors"
	"fmt"
	"testing"
)

func TestFatalClassification(t *testing.T) {
	if Fatal(nil) != nil {
		t.Fatal("Fatal(nil) != nil")
	}
	base := errors.New("bad request")
	f := Fatal(base)
	if !IsFatal(f) {
		t.Fatal("Fatal error not detected")
	}
	if IsFatal(base) {
		t.Fatal("plain error classified fatal")
	}
	if !errors.Is(f, base) {
		t.Fatal("Fatal broke the error chain")
	}
	// Idempotent: wrapping twice adds one prefix.
	if Fatal(f) != f {
		t.Fatal("Fatal not idempotent")
	}
	// Wrapping a fatal error keeps it fatal.
	if !IsFatal(fmt.Errorf("step 3: %w", f)) {
		t.Fatal("wrapped fatal error lost classification")
	}
}

func TestFatalSurvivesStringRoundTrip(t *testing.T) {
	// net/rpc flattens server errors to their message string; the
	// classification must survive that.
	f := Fatalf("timestep %d out of range", 99)
	flattened := errors.New(f.Error())
	if !IsFatal(flattened) {
		t.Fatal("fatal marker lost across string round-trip")
	}
	wrapped := fmt.Errorf("cluster: step 99: %w", flattened)
	if !IsFatal(wrapped) {
		t.Fatal("fatal marker lost when re-wrapped after round-trip")
	}
}

func TestSourceCloseAndFatalOpenStep(t *testing.T) {
	src := testSource(t)
	// Out-of-range steps are fatal: no worker could serve them.
	if _, err := src.OpenStep(99); !IsFatal(err) {
		t.Fatalf("out-of-range OpenStep err = %v, want fatal", err)
	}
	if _, err := src.OpenStep(-1); !IsFatal(err) {
		t.Fatalf("negative OpenStep err = %v, want fatal", err)
	}
	st, err := src.OpenStep(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}
	// Steps opened before Close stay usable; new opens fail fatally.
	if _, err := st.Rows(), st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.OpenStep(0); !IsFatal(err) {
		t.Fatalf("OpenStep after Close err = %v, want fatal", err)
	}
}
