package fastquery

import (
	"fmt"

	"repro/internal/fastbit"
)

// IndexOptions configures BuildIndexes.
type IndexOptions struct {
	// Vars lists the variables to index; nil indexes every float column
	// except the identifier column.
	Vars []string
	// IDVar names the identifier column; "" disables the ID index.
	IDVar string
	// Index holds the bitmap index build parameters.
	Index fastbit.IndexOptions
	// Force rebuilds indexes that already exist.
	Force bool
	// Progress, when non-nil, is called after each timestep is indexed
	// (skipped steps report indexBytes < 0).
	Progress func(step, total int, indexBytes int)
}

// BuildIndexes runs the paper's one-time preprocessing over an existing
// dataset directory: for every timestep, read the data columns, build the
// bitmap and identifier indexes and write the sidecar index file
// (Figure 1's "indexing metadata" path). Steps that already have an index
// are skipped unless Force is set.
func BuildIndexes(dir string, opt IndexOptions) error {
	src, err := Open(dir)
	if err != nil {
		return err
	}
	idVar := opt.IDVar
	if idVar == "" {
		idVar = "id"
	}
	for t := 0; t < src.Steps(); t++ {
		if src.dataset().HasIndex(t) && !opt.Force {
			if opt.Progress != nil {
				opt.Progress(t, src.Steps(), -1)
			}
			continue
		}
		f, err := src.dataset().OpenStep(t)
		if err != nil {
			return err
		}
		vars := opt.Vars
		if vars == nil {
			for _, name := range f.Columns() {
				if name != idVar {
					vars = append(vars, name)
				}
			}
		}
		cols := map[string][]float64{}
		for _, name := range vars {
			col, err := f.ReadAsFloat64(name)
			if err != nil {
				f.Close()
				return fmt.Errorf("fastquery: step %d: %w", t, err)
			}
			cols[name] = col
		}
		var ids []int64
		if f.HasColumn(idVar) {
			if ids, err = f.ReadInt64(idVar); err != nil {
				f.Close()
				return fmt.Errorf("fastquery: step %d: %w", t, err)
			}
		}
		f.Close()
		si, err := fastbit.BuildStepIndex(cols, ids, idVar, opt.Index)
		if err != nil {
			return fmt.Errorf("fastquery: step %d: %w", t, err)
		}
		if err := si.WriteFile(src.dataset().IndexPath(t)); err != nil {
			return err
		}
		if opt.Progress != nil {
			opt.Progress(t, src.Steps(), si.SizeBytes())
		}
	}
	return nil
}
