// Package fastquery is the query/histogram veneer over the columnar
// storage layer — the analogue of HDF5-FastQuery in the paper's stack
// (Section V): an implementation-neutral API for evaluating compound range
// queries, extracting particle subsets and computing conditional
// histograms over one timestep, with a choice of execution backend.
//
// Two backends implement every operation:
//
//	FastBit — bitmap-index accelerated (requires the sidecar index file)
//	Scan    — the paper's "Custom" sequential-scan baseline
//
// Both produce identical results; the performance comparison between them
// is the subject of the paper's evaluation section.
//
// # Concurrency
//
// Source and Step are safe for concurrent readers: any number of
// goroutines may call Count, Select, Histogram1D/2D and MinMax on the
// same Step (or open Steps from the same Source) simultaneously. Data
// reads use positioned I/O (ReadAt), the lazy index guards its section
// caches with a mutex, and every evaluation allocates its own scratch
// state. Close must not race with in-flight queries on the same Step.
package fastquery

import (
	"context"
	"fmt"
	"log"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/fastbit"
	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/scan"
)

// Backend selects the execution strategy for queries and histograms.
type Backend int

// Available backends.
const (
	FastBit Backend = iota
	Scan
)

func (b Backend) String() string {
	switch b {
	case FastBit:
		return "fastbit"
	case Scan:
		return "custom"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Source is an open multi-timestep dataset. A Source can track a growing
// dataset: Reload re-reads the on-disk metadata and atomically swaps in
// the new step count, so a live ingestion pipeline appends timesteps to a
// dataset that is being served without a restart.
type Source struct {
	dir    string
	ds     atomic.Pointer[colstore.Dataset]
	closed atomic.Bool

	mu            sync.Mutex
	indexFailures map[int]string // timestep -> why its index was rejected
}

// IndexFailure records one timestep whose sidecar index could not be used.
type IndexFailure struct {
	Step   int    `json:"step"`
	Reason string `json:"reason"`
}

// IndexFailures reports every timestep whose index was rejected at open
// time (truncated, CRC mismatch, row-count mismatch) and therefore serves
// scan-backend queries only, sorted by timestep.
func (s *Source) IndexFailures() []IndexFailure {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IndexFailure, 0, len(s.indexFailures))
	for t, reason := range s.indexFailures {
		out = append(out, IndexFailure{Step: t, Reason: reason})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// recordIndexFailure notes a rejected index for the stats endpoint.
func (s *Source) recordIndexFailure(t int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.indexFailures == nil {
		s.indexFailures = map[int]string{}
	}
	s.indexFailures[t] = err.Error()
}

// Open opens a dataset directory produced by the preprocessing pipeline.
func Open(dir string) (*Source, error) {
	ds, err := colstore.OpenDataset(dir)
	if err != nil {
		return nil, err
	}
	s := &Source{dir: dir}
	s.ds.Store(ds)
	return s, nil
}

// dataset returns the current metadata snapshot.
func (s *Source) dataset() *colstore.Dataset { return s.ds.Load() }

// Reload re-reads the dataset metadata from disk and swaps it in,
// returning the (possibly grown) step count. Steps opened before the
// reload stay valid — they own their files — and concurrent queries are
// unaffected: the swap is atomic and the old snapshot remains readable
// by requests that already hold it.
func (s *Source) Reload() (int, error) {
	if s.closed.Load() {
		return 0, Fatalf("fastquery: source closed")
	}
	ds, err := colstore.OpenDataset(s.dir)
	if err != nil {
		return 0, err
	}
	s.ds.Store(ds)
	return ds.Meta.Steps, nil
}

// Close marks the source closed; subsequent OpenStep calls fail. Steps
// opened earlier stay valid — each Step owns its files. Close is
// idempotent.
func (s *Source) Close() error {
	s.closed.Store(true)
	return nil
}

// Steps returns the number of timesteps.
func (s *Source) Steps() int { return s.dataset().Meta.Steps }

// Variables returns the dataset's declared variables.
func (s *Source) Variables() []string {
	return append([]string(nil), s.dataset().Meta.Variables...)
}

// Dataset exposes the underlying storage handle (the current snapshot;
// a concurrent Reload may supersede it).
func (s *Source) Dataset() *colstore.Dataset { return s.dataset() }

// OpenStep opens one timestep for querying. The sidecar index file is
// opened for on-demand section loading when present — only the directory
// is read up front, and each query loads just the column indexes it
// touches, like FastBit. Without an index only the Scan backend works.
//
// A damaged index — truncated file, CRC mismatch, or a row count that
// disagrees with the data file — does not fail the step: the problem is
// logged and recorded in IndexFailures, and the step opens with the index
// disabled so scan-backend queries keep working. FastBit-backend requests
// on such a step return an "index unavailable" error naming the cause.
func (s *Source) OpenStep(t int) (*Step, error) {
	if s.closed.Load() {
		return nil, Fatalf("fastquery: source closed")
	}
	ds := s.dataset()
	if t < 0 || t >= ds.Meta.Steps {
		return nil, Fatalf("fastquery: timestep %d out of range [0,%d)", t, ds.Meta.Steps)
	}
	f, err := ds.OpenStep(t)
	if err != nil {
		return nil, err
	}
	st := &Step{t: t, file: f}
	if ds.HasIndex(t) {
		ls, err := fastbit.OpenLazy(ds.IndexPath(t))
		if err == nil && ls.N() != f.Rows() {
			ls.Close()
			err = fmt.Errorf("index covers %d rows, data has %d", ls.N(), f.Rows())
			ls = nil
		}
		if err != nil {
			log.Printf("fastquery: step %d: index unusable, falling back to scan backend: %v", t, err)
			s.recordIndexFailure(t, err)
			st.indexErr = err
		} else {
			st.index = ls
		}
	}
	return st, nil
}

// Step is one open timestep. Its query and histogram methods are safe
// for concurrent use; see the package comment.
type Step struct {
	t     int
	file  *colstore.File
	index *fastbit.LazyStep
	// indexErr remembers why the sidecar index was rejected at open time;
	// nil when no index file exists or the index is healthy.
	indexErr error
}

// Close releases the underlying files.
func (st *Step) Close() error {
	if st.index != nil {
		st.index.Close() //nolint:errcheck // read-only handle
	}
	return st.file.Close()
}

// T returns the timestep number.
func (st *Step) T() int { return st.t }

// Rows returns the record count.
func (st *Step) Rows() uint64 { return st.file.Rows() }

// HasIndex reports whether the FastBit backend is available.
func (st *Step) HasIndex() bool { return st.index != nil }

// IndexError returns why the sidecar index was rejected at open time, or
// nil when no index exists or the index is healthy.
func (st *Step) IndexError() error { return st.indexErr }

// noIndexError explains a FastBit-backend request on a step without a
// usable index. The error is fatal — every worker sees the same file — so
// the cluster layer will not waste retries on it.
func (st *Step) noIndexError() error {
	if st.indexErr != nil {
		return Fatalf("fastquery: step %d: index unavailable (%v); use the Scan backend", st.t, st.indexErr)
	}
	return fmt.Errorf("fastquery: step %d has no index; use the Scan backend", st.t)
}

// IOBytes returns cumulative bytes read from the data file (not the
// index), for the performance model.
func (st *Step) IOBytes() uint64 { return st.file.BytesRead() }

// ReadColumn reads a full column as float64.
func (st *Step) ReadColumn(name string) ([]float64, error) {
	return st.file.ReadAsFloat64(name)
}

// ReadIDs reads the identifier column.
func (st *Step) ReadIDs() ([]int64, error) {
	return st.file.ReadInt64(st.idVar())
}

// ValuesAt gathers a column's values at the given sorted row positions,
// reading only the chunks that contain them. This is the shard executor's
// access path: a fragment evaluates over its row range of the step, which
// is a small slice of the full column.
func (st *Step) ValuesAt(name string, positions []uint64) ([]float64, error) {
	return st.ValuesAtCtx(context.Background(), name, positions)
}

// ValuesAtCtx is ValuesAt charging the read to the context's per-query
// cost accumulator, when one is attached.
func (st *Step) ValuesAtCtx(ctx context.Context, name string, positions []uint64) ([]float64, error) {
	return st.file.ReadFloat64AtCost(name, positions, obs.CostFromContext(ctx))
}

func (st *Step) idVar() string {
	if st.index != nil && st.index.IDVar() != "" {
		return st.index.IDVar()
	}
	return "id"
}

// IDVar returns the name of the identifier column this step resolves ID
// queries against ("id" unless the index metadata names another).
func (st *Step) IDVar() string { return st.idVar() }

// IDsAtCtx gathers the identifier column's values at the given sorted row
// positions — the particle-tracking handoff: a selection's positions
// become the ID set that an `id in (...)` predicate follows across steps.
func (st *Step) IDsAtCtx(ctx context.Context, positions []uint64) ([]int64, error) {
	vals, err := st.file.ReadFloat64AtCost(st.idVar(), positions, obs.CostFromContext(ctx))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = int64(v)
	}
	return out, nil
}

// reader adapts the colstore file to fastbit's RawReader, charging raw
// reads to the per-query cost accumulator when one is attached.
type reader struct {
	f    *colstore.File
	cost *obs.Cost
}

func (r reader) ValuesAt(name string, positions []uint64) ([]float64, error) {
	return r.f.ReadFloat64AtCost(name, positions, r.cost)
}

func (r reader) Column(name string) ([]float64, error) {
	return r.f.ReadAsFloat64Cost(name, r.cost)
}

// evaluator returns a fastbit evaluator for this step, wired to charge
// index loads and raw reads to ctx's cost accumulator when one is set.
func (st *Step) evaluator(ctx context.Context) (*fastbit.Evaluator, error) {
	if st.index == nil {
		return nil, st.noIndexError()
	}
	c := obs.CostFromContext(ctx)
	return st.index.CostEvaluator(reader{f: st.file, cost: c}, c), nil
}

// loadScanColumns reads the columns needed to scan-evaluate e plus any
// extra variables, recording the read as a "read-columns" span on the
// active trace.
func (st *Step) loadScanColumns(ctx context.Context, e query.Expr, extra ...string) (scan.Columns, error) {
	_, sp := obs.StartSpan(ctx, "read-columns")
	defer sp.End()
	need := map[string]bool{}
	if e != nil {
		for _, v := range query.Vars(e) {
			need[v] = true
		}
	}
	for _, v := range extra {
		need[v] = true
	}
	names := make([]string, 0, len(need))
	for v := range need {
		names = append(names, v)
	}
	sort.Strings(names)
	sp.SetAttr("columns", strings.Join(names, ","))
	cost := obs.CostFromContext(ctx)
	cols := scan.Columns{}
	for _, v := range names {
		col, err := st.file.ReadAsFloat64Cost(v, cost)
		if err != nil {
			return nil, err
		}
		cols[v] = col
	}
	return cols, nil
}

// Select returns the sorted record positions matching e.
func (st *Step) Select(e query.Expr, b Backend) ([]uint64, error) {
	return st.SelectCtx(context.Background(), e, b)
}

// SelectCtx is Select with cooperative cancellation: both backends observe
// ctx at periodic checkpoints, so a canceled query stops within one
// checkpoint interval (scan.CheckpointRows rows).
func (st *Step) SelectCtx(ctx context.Context, e query.Expr, b Backend) ([]uint64, error) {
	switch b {
	case FastBit:
		ev, err := st.evaluator(ctx)
		if err != nil {
			return nil, err
		}
		return ev.SelectCtx(ctx, e)
	case Scan:
		cols, err := st.loadScanColumns(ctx, e)
		if err != nil {
			return nil, err
		}
		return scan.SelectCtx(ctx, cols, e)
	default:
		return nil, fmt.Errorf("fastquery: unknown backend %v", b)
	}
}

// Count returns the number of records matching e.
func (st *Step) Count(e query.Expr, b Backend) (uint64, error) {
	return st.CountCtx(context.Background(), e, b)
}

// CountCtx is Count with cooperative cancellation.
func (st *Step) CountCtx(ctx context.Context, e query.Expr, b Backend) (uint64, error) {
	pos, err := st.SelectCtx(ctx, e, b)
	if err != nil {
		return 0, err
	}
	return uint64(len(pos)), nil
}

// SelectIDs returns the identifiers of records matching e.
func (st *Step) SelectIDs(e query.Expr, b Backend) ([]int64, error) {
	return st.SelectIDsCtx(context.Background(), e, b)
}

// SelectIDsCtx is SelectIDs with cooperative cancellation.
func (st *Step) SelectIDsCtx(ctx context.Context, e query.Expr, b Backend) ([]int64, error) {
	pos, err := st.SelectCtx(ctx, e, b)
	if err != nil {
		return nil, err
	}
	vals, err := st.file.ReadFloat64AtCost(st.idVar(), pos, obs.CostFromContext(ctx))
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = int64(v)
	}
	return out, nil
}

// FindIDs returns the sorted positions of records whose identifier is in
// the search set: the particle-tracking primitive (paper Section V-B).
func (st *Step) FindIDs(ids []int64, b Backend) ([]uint64, error) {
	return st.FindIDsCtx(context.Background(), ids, b)
}

// FindIDsCtx is FindIDs with cooperative cancellation.
func (st *Step) FindIDsCtx(ctx context.Context, ids []int64, b Backend) ([]uint64, error) {
	switch b {
	case FastBit:
		if st.index == nil {
			return nil, st.noIndexError()
		}
		pos, err := st.index.IDLookup(ids)
		if err != nil {
			return nil, fmt.Errorf("fastquery: step %d: %w", st.t, err)
		}
		return pos, nil
	case Scan:
		col, err := st.ReadIDs()
		if err != nil {
			return nil, err
		}
		return scan.FindIDsCtx(ctx, col, ids)
	default:
		return nil, fmt.Errorf("fastquery: unknown backend %v", b)
	}
}

// Histogram2D computes a 2D histogram; cond may be nil for unconditional.
func (st *Step) Histogram2D(cond query.Expr, spec histogram.Spec2D, b Backend) (*histogram.Hist2D, error) {
	return st.Histogram2DCtx(context.Background(), cond, spec, b)
}

// Histogram2DCtx is Histogram2D with cooperative cancellation.
func (st *Step) Histogram2DCtx(ctx context.Context, cond query.Expr, spec histogram.Spec2D, b Backend) (*histogram.Hist2D, error) {
	switch b {
	case FastBit:
		ev, err := st.evaluator(ctx)
		if err != nil {
			return nil, err
		}
		return ev.Histogram2DCtx(ctx, cond, spec)
	case Scan:
		cols, err := st.loadScanColumns(ctx, cond, spec.XVar, spec.YVar)
		if err != nil {
			return nil, err
		}
		return scanHistogram2D(ctx, cols, cond, spec)
	default:
		return nil, fmt.Errorf("fastquery: unknown backend %v", b)
	}
}

// Histogram1D computes a 1D histogram; cond may be nil.
func (st *Step) Histogram1D(cond query.Expr, spec histogram.Spec1D, b Backend) (*histogram.Hist1D, error) {
	return st.Histogram1DCtx(context.Background(), cond, spec, b)
}

// Histogram1DCtx is Histogram1D with cooperative cancellation.
func (st *Step) Histogram1DCtx(ctx context.Context, cond query.Expr, spec histogram.Spec1D, b Backend) (*histogram.Hist1D, error) {
	switch b {
	case FastBit:
		ev, err := st.evaluator(ctx)
		if err != nil {
			return nil, err
		}
		return ev.Histogram1DCtx(ctx, cond, spec)
	case Scan:
		cols, err := st.loadScanColumns(ctx, cond, spec.Var)
		if err != nil {
			return nil, err
		}
		return scanHistogram1D(ctx, cols, cond, spec)
	default:
		return nil, fmt.Errorf("fastquery: unknown backend %v", b)
	}
}

// Histogram1DIndexOnlyCtx computes an approximate conditional 1D
// histogram entirely in index space: the condition is evaluated with
// boundary bins admitted wholesale (no candidate checks, no raw reads)
// and the histogram is binned at the index's own resolution via bitmap
// AND-counts. It requires a usable index; the result's totals are an
// upper bound on the exact answer. This is the serve layer's brownout
// path under sustained overload.
func (st *Step) Histogram1DIndexOnlyCtx(ctx context.Context, cond query.Expr, name string) (*histogram.Hist1D, error) {
	ev, err := st.evaluator(ctx)
	if err != nil {
		return nil, err
	}
	ev.Approx = true
	return ev.Histogram1DFromBitmapsCtx(ctx, cond, name)
}

// Histogram2DIndexOnlyCtx is the 2D analogue of Histogram1DIndexOnlyCtx:
// an approximate conditional 2D histogram at the two indexes' native
// resolutions, computed from bitmaps alone.
func (st *Step) Histogram2DIndexOnlyCtx(ctx context.Context, cond query.Expr, xvar, yvar string) (*histogram.Hist2D, error) {
	ev, err := st.evaluator(ctx)
	if err != nil {
		return nil, err
	}
	ev.Approx = true
	return ev.Histogram2DFromBitmapsCtx(ctx, cond, xvar, yvar)
}

// Histogram2DParallel computes a conditional 2D histogram with the SMP
// data-parallel algorithm (rows sharded across workers, partial histograms
// merged — scan.ParallelHistogram2D). It always runs on the scan path;
// the index-accelerated path parallelises across timesteps instead.
func (st *Step) Histogram2DParallel(cond query.Expr, spec histogram.Spec2D, workers int) (*histogram.Hist2D, error) {
	return st.Histogram2DParallelCtx(context.Background(), cond, spec, workers)
}

// Histogram2DParallelCtx is Histogram2DParallel with cooperative
// cancellation: every shard worker observes ctx independently.
func (st *Step) Histogram2DParallelCtx(ctx context.Context, cond query.Expr, spec histogram.Spec2D, workers int) (*histogram.Hist2D, error) {
	cols, err := st.loadScanColumns(ctx, cond, spec.XVar, spec.YVar)
	if err != nil {
		return nil, err
	}
	xe, ye, err := resolveEdges(ctx, cols, cond, spec)
	if err != nil {
		return nil, err
	}
	return scan.ParallelHistogram2DCtx(ctx, cols, spec.XVar, spec.YVar, cond, xe, ye, workers)
}

// resolveEdges derives the bin edges a spec implies for the given columns
// and condition (shared by the serial and parallel scan paths).
func resolveEdges(ctx context.Context, cols scan.Columns, cond query.Expr, spec histogram.Spec2D) (xe, ye []float64, err error) {
	xs, ys := cols[spec.XVar], cols[spec.YVar]
	selX, selY := xs, ys
	if cond != nil {
		pos, err := scan.SelectCtx(ctx, cols, cond)
		if err != nil {
			return nil, nil, err
		}
		selX = gather(xs, pos)
		selY = gather(ys, pos)
	}
	xlo, xhi := spec.XLo, spec.XHi
	if !spec.HasXRange() {
		xlo, xhi = scan.MinMax(selX)
	}
	ylo, yhi := spec.YLo, spec.YHi
	if !spec.HasYRange() {
		ylo, yhi = scan.MinMax(selY)
	}
	if spec.Binning == histogram.Adaptive {
		if xe, err = histogram.AdaptiveEdges(selX, xlo, xhi, spec.XBins, spec.MinDensity); err != nil {
			return nil, nil, err
		}
		if ye, err = histogram.AdaptiveEdges(selY, ylo, yhi, spec.YBins, spec.MinDensity); err != nil {
			return nil, nil, err
		}
		return xe, ye, nil
	}
	return histogram.UniformEdges(xlo, xhi, spec.XBins), histogram.UniformEdges(ylo, yhi, spec.YBins), nil
}

// scanHistogram2D resolves spec ranges/edges against scan columns. Range
// derivation and adaptive edges see only the selected values, like the
// FastBit path, so both backends produce identical histograms.
func scanHistogram2D(ctx context.Context, cols scan.Columns, cond query.Expr, spec histogram.Spec2D) (*histogram.Hist2D, error) {
	xe, ye, err := resolveEdges(ctx, cols, cond, spec)
	if err != nil {
		return nil, err
	}
	return scan.ConditionalHistogram2DCtx(ctx, cols, spec.XVar, spec.YVar, cond, xe, ye)
}

func scanHistogram1D(ctx context.Context, cols scan.Columns, cond query.Expr, spec histogram.Spec1D) (*histogram.Hist1D, error) {
	vs := cols[spec.Var]
	sel := vs
	if cond != nil {
		pos, err := scan.SelectCtx(ctx, cols, cond)
		if err != nil {
			return nil, err
		}
		sel = gather(vs, pos)
	}
	lo, hi := spec.Lo, spec.Hi
	if !spec.HasRange() {
		lo, hi = scan.MinMax(sel)
	}
	var edges []float64
	var err error
	if spec.Binning == histogram.Adaptive {
		if edges, err = histogram.AdaptiveEdges(sel, lo, hi, spec.Bins, spec.MinDensity); err != nil {
			return nil, err
		}
	} else {
		edges = histogram.UniformEdges(lo, hi, spec.Bins)
	}
	return scan.Histogram1DCtx(ctx, cols, spec.Var, cond, edges)
}

func gather(vals []float64, pos []uint64) []float64 {
	out := make([]float64, len(pos))
	for i, p := range pos {
		out[i] = vals[p]
	}
	return out
}

// MinMax returns the value range of a column, preferring the index's
// metadata (free) over a column scan.
func (st *Step) MinMax(name string) (lo, hi float64, err error) {
	if st.index != nil && st.index.HasColumn(name) {
		ix, err := st.index.Column(name)
		if err != nil {
			return math.NaN(), math.NaN(), err
		}
		return ix.Min(), ix.Max(), nil
	}
	col, err := st.ReadColumn(name)
	if err != nil {
		return math.NaN(), math.NaN(), err
	}
	lo, hi = scan.MinMax(col)
	return lo, hi, nil
}
