package scan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/histogram"
	"repro/internal/query"
)

func testColumns(n int, seed int64) Columns {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	pxs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		pxs[i] = rng.NormFloat64() * 1e9
		ys[i] = rng.Float64()*2 - 1
	}
	return Columns{"x": xs, "px": pxs, "y": ys}
}

func TestSelect(t *testing.T) {
	c := Columns{
		"px": {1, 5, 10, 3},
		"y":  {-1, 1, 1, -1},
	}
	e := query.MustParse("px > 2 && y > 0")
	got, err := Select(c, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Select = %v", got)
	}
}

func TestSelectUnknownVariable(t *testing.T) {
	c := Columns{"px": {1}}
	if _, err := Select(c, query.MustParse("nope > 0")); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := Count(c, query.MustParse("nope > 0")); err == nil {
		t.Fatal("unknown variable accepted by Count")
	}
}

func TestSelectMismatchedColumns(t *testing.T) {
	c := Columns{"a": {1, 2}, "b": {1}}
	if _, err := Select(c, query.MustParse("a > 0 && b > 0")); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestCountMatchesSelectProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := testColumns(500, seed)
		e := query.MustParse("px > 0 && x < 5")
		sel, err := Select(c, e)
		if err != nil {
			return false
		}
		cnt, err := Count(c, e)
		if err != nil {
			return false
		}
		return cnt == uint64(len(sel))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram2DMatchesGenericCompute(t *testing.T) {
	c := testColumns(5000, 7)
	xe := histogram.UniformEdges(0, 10, 32)
	ye := histogram.UniformEdges(-1, 1, 16)
	got, err := Histogram2D(c, "x", "y", xe, ye)
	if err != nil {
		t.Fatal(err)
	}
	want, err := histogram.Compute2D("x", "y", c["x"], c["y"], xe, ye)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("bin %d: %d vs %d", i, got.Counts[i], want.Counts[i])
		}
	}
}

func TestConditionalHistogram2D(t *testing.T) {
	c := Columns{
		"x":  {0.5, 1.5, 2.5, 3.5},
		"y":  {0.5, 0.5, 0.5, 0.5},
		"px": {1, -1, 1, -1},
	}
	xe := histogram.UniformEdges(0, 4, 4)
	ye := histogram.UniformEdges(0, 1, 1)
	h, err := ConditionalHistogram2D(c, "x", "y", query.MustParse("px > 0"), xe, ye)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 2 || h.At(0, 0) != 1 || h.At(2, 0) != 1 {
		t.Fatalf("conditional counts = %v", h.Counts)
	}
	// Condition referencing missing variable errors.
	if _, err := ConditionalHistogram2D(c, "x", "y", query.MustParse("zz > 0"), xe, ye); err == nil {
		t.Fatal("bad condition accepted")
	}
	// Unknown plot variables error.
	if _, err := ConditionalHistogram2D(c, "zz", "y", nil, xe, ye); err == nil {
		t.Fatal("unknown x var accepted")
	}
	if _, err := ConditionalHistogram2D(c, "x", "zz", nil, xe, ye); err == nil {
		t.Fatal("unknown y var accepted")
	}
}

func TestHistogram1D(t *testing.T) {
	c := Columns{"px": {0.1, 0.2, 0.7, 0.9}, "y": {1, -1, 1, 1}}
	h, err := Histogram1D(c, "px", query.MustParse("y > 0"), histogram.UniformEdges(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Fatalf("1D counts = %v", h.Counts)
	}
	if _, err := Histogram1D(c, "nope", nil, histogram.UniformEdges(0, 1, 2)); err == nil {
		t.Fatal("unknown var accepted")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %g, %g", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty MinMax = %g, %g", lo, hi)
	}
}

func TestFindIDs(t *testing.T) {
	ids := []int64{100, 50, 200, 50, 300}
	got := FindIDs(ids, []int64{50, 300, 999})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("FindIDs = %v", got)
	}
	if got := FindIDs(ids, nil); len(got) != 0 {
		t.Fatalf("empty set FindIDs = %v", got)
	}
	if got := FindIDs(nil, []int64{1}); len(got) != 0 {
		t.Fatalf("empty ids FindIDs = %v", got)
	}
}

// Property: FindIDs returns exactly the rows whose id is in the set.
func TestFindIDsProperty(t *testing.T) {
	f := func(rawIDs []int64, rawSet []int64) bool {
		got := FindIDs(rawIDs, rawSet)
		want := map[int64]bool{}
		for _, id := range rawSet {
			want[id] = true
		}
		gi := 0
		for row, id := range rawIDs {
			if want[id] {
				if gi >= len(got) || got[gi] != uint64(row) {
					return false
				}
				gi++
			}
		}
		return gi == len(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParallelHistogram2DMatchesSerial(t *testing.T) {
	c := testColumns(20000, 9)
	xe := histogram.UniformEdges(0, 10, 64)
	ye := histogram.UniformEdges(-1, 1, 64)
	cond := query.MustParse("px > 0")
	want, err := ConditionalHistogram2D(c, "x", "y", cond, xe, ye)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 7, 16} {
		got, err := ParallelHistogram2D(c, "x", "y", cond, xe, ye, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Total() != want.Total() {
			t.Fatalf("workers=%d: total %d vs %d", workers, got.Total(), want.Total())
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] {
				t.Fatalf("workers=%d: bin %d differs", workers, i)
			}
		}
	}
}

func TestParallelHistogram2DMoreWorkersThanRows(t *testing.T) {
	c := testColumns(50, 11)
	xe := histogram.UniformEdges(0, 10, 4)
	ye := histogram.UniformEdges(-1, 1, 4)
	h, err := ParallelHistogram2D(c, "x", "y", nil, xe, ye, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 50 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestParallelHistogram2DValidation(t *testing.T) {
	c := testColumns(100, 10)
	xe := histogram.UniformEdges(0, 10, 4)
	ye := histogram.UniformEdges(-1, 1, 4)
	if _, err := ParallelHistogram2D(c, "zz", "y", nil, xe, ye, 2); err == nil {
		t.Fatal("unknown x accepted")
	}
	if _, err := ParallelHistogram2D(c, "x", "zz", nil, xe, ye, 2); err == nil {
		t.Fatal("unknown y accepted")
	}
	if _, err := ParallelHistogram2D(c, "x", "y", query.MustParse("zz > 0"), xe, ye, 2); err == nil {
		t.Fatal("bad condition accepted")
	}
	bad := Columns{"x": {1, 2}, "y": {1}}
	if _, err := ParallelHistogram2D(bad, "x", "y", nil, xe, ye, 2); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

// Property: for any worker count the parallel histogram conserves mass.
func TestParallelHistogramMassProperty(t *testing.T) {
	f := func(seed int64, workersRaw uint8) bool {
		workers := int(workersRaw%8) + 1
		c := testColumns(1000, seed)
		xe := histogram.UniformEdges(0, 10, 8)
		ye := histogram.UniformEdges(-1, 1, 8)
		h, err := ParallelHistogram2D(c, "x", "y", nil, xe, ye, workers)
		if err != nil {
			return false
		}
		// All x values lie in [0,10); y in [-1,1): total equals rows.
		return h.Total() == 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
