package scan

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/query"
)

// trippingCtx reports itself canceled after `after` Err() probes. It makes
// mid-loop checkpointing deterministic: with data spanning several
// CheckpointRows intervals, the loop must notice the cancellation at the
// first checkpoint after the trip, not run to completion.
type trippingCtx struct {
	context.Context
	probes atomic.Int64
	after  int64
}

func (c *trippingCtx) Err() error {
	if c.probes.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// bigColumns spans four checkpoint intervals so cancellation mid-scan is
// observable.
func bigColumns() Columns {
	n := 4 * CheckpointRows
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i % 100)
	}
	return Columns{"x": xs}
}

func TestScanChecksContextMidLoop(t *testing.T) {
	c := bigColumns()
	e := query.MustParse("x > 50")

	// Sanity: an untripped context scans to completion.
	want, err := Count(c, e)
	if err != nil || want == 0 {
		t.Fatalf("baseline count = %d, %v", want, err)
	}

	// Trip after the second probe: the loop passes checkpoints at rows 0
	// and CheckpointRows, then must abort at 2*CheckpointRows.
	ctx := &trippingCtx{Context: context.Background(), after: 2}
	if _, err := CountCtx(ctx, c, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountCtx err = %v, want context.Canceled", err)
	}
	// The loop stopped at the first checkpoint past the trip: exactly one
	// more probe than the allowance, not one per remaining interval.
	if got := ctx.probes.Load(); got != 3 {
		t.Fatalf("context probed %d times, want 3 (stop at first checkpoint after trip)", got)
	}

	for name, call := range map[string]func(context.Context) error{
		"SelectCtx": func(ctx context.Context) error {
			_, err := SelectCtx(ctx, c, e)
			return err
		},
		"Histogram1DCtx": func(ctx context.Context) error {
			_, err := Histogram1DCtx(ctx, c, "x", e, []float64{0, 50, 100})
			return err
		},
		"ConditionalHistogram2DCtx": func(ctx context.Context) error {
			cc := Columns{"x": c["x"], "y": c["x"]}
			_, err := ConditionalHistogram2DCtx(ctx, cc, "x", "y", nil,
				[]float64{0, 50, 100}, []float64{0, 50, 100})
			return err
		},
		"FindIDsCtx": func(ctx context.Context) error {
			ids := make([]int64, len(c["x"]))
			for i := range ids {
				ids[i] = int64(i)
			}
			_, err := FindIDsCtx(ctx, ids, []int64{7, 8, 9})
			return err
		},
	} {
		ctx := &trippingCtx{Context: context.Background(), after: 1}
		if err := call(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestCanceledContextStopsPromptly measures the headline guarantee: a scan
// over many checkpoint intervals, canceled from the start, returns without
// doing the work.
func TestCanceledContextStopsPromptly(t *testing.T) {
	c := bigColumns()
	e := query.MustParse("x > 50")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := CountCtx(ctx, c, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The full scan takes milliseconds; an aborted one must be far under
	// any full pass. Generous bound to stay robust on loaded machines.
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("canceled scan took %v", d)
	}
}
