package scan

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/histogram"
	"repro/internal/query"
)

// ParallelHistogram2D computes a conditional 2D histogram by sharding the
// rows across workers and merging per-shard partial histograms — the SMP
// conditional-histogram algorithm family of Stockinger et al. that the
// paper cites as its predecessor for accelerating data mining (Section
// II-C). Edges must be fixed up front so the partials merge exactly.
// workers <= 0 selects GOMAXPROCS.
func ParallelHistogram2D(c Columns, xvar, yvar string, cond query.Expr, xEdges, yEdges []float64, workers int) (*histogram.Hist2D, error) {
	return ParallelHistogram2DCtx(context.Background(), c, xvar, yvar, cond, xEdges, yEdges, workers)
}

// ParallelHistogram2DCtx is ParallelHistogram2D with cooperative
// cancellation: every shard worker observes ctx at its own checkpoint
// interval, so a canceled histogram releases all cores promptly.
func ParallelHistogram2DCtx(ctx context.Context, c Columns, xvar, yvar string, cond query.Expr, xEdges, yEdges []float64, workers int) (*histogram.Hist2D, error) {
	xs, ok := c[xvar]
	if !ok {
		return nil, fmt.Errorf("scan: unknown variable %q", xvar)
	}
	if _, ok := c[yvar]; !ok {
		return nil, fmt.Errorf("scan: unknown variable %q", yvar)
	}
	if cond != nil {
		if err := ValidateVars(c, cond); err != nil {
			return nil, err
		}
	}
	if _, err := c.rows(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(xs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return ConditionalHistogram2DCtx(ctx, c, xvar, yvar, cond, xEdges, yEdges)
	}

	partials := make([]*histogram.Hist2D, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			shard := Columns{}
			for name, col := range c {
				shard[name] = col[lo:hi]
			}
			partials[w], errs[w] = ConditionalHistogram2DCtx(ctx, shard, xvar, yvar, cond, xEdges, yEdges)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := partials[0]
	for _, p := range partials[1:] {
		if err := out.Merge(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
