package scan

import (
	"context"

	"repro/internal/obs"
)

// Package-level instruments for the sequential-scan baseline, registered
// in the process-wide registry alongside the fastbit instruments so the
// index-vs-scan comparison the paper makes is visible on one scrape.
var (
	metricScanRows = obs.Default().Counter("scan_rows_total",
		"Records visited by sequential-scan operations.")
	metricScans = obs.Default().Counter("scan_ops_total",
		"Sequential-scan operations performed.")
	metricScanSeconds = obs.Default().Histogram("scan_seconds",
		"Wall time of one sequential-scan operation.", nil)
)

func init() {
	// Zero-value gauge so the layer always exposes one of each instrument
	// kind; set to the most recent operation's rows/sec.
	obs.Default().Gauge("scan_last_rows_per_second",
		"Throughput of the most recent sequential-scan operation.")
}

// observeScan records one completed scan pass over n rows taking sec
// seconds, and charges the rows to the request's per-query cost
// accumulator when the context carries one.
func observeScan(ctx context.Context, n int, sec float64) {
	metricScans.Inc()
	metricScanRows.Add(uint64(n))
	metricScanSeconds.Observe(sec)
	obs.CostFromContext(ctx).AddRows(uint64(n))
	if sec > 0 {
		obs.Default().Gauge("scan_last_rows_per_second", "").Set(float64(n) / sec)
	}
}
