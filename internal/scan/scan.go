// Package scan implements the sequential-scan baseline the paper labels
// "Custom" in its performance charts: histogram computation and particle
// selection without any index structure. The paper built this baseline
// (rather than timing the scientists' IDL scripts) for a fair comparison;
// we reproduce it the same way.
//
// Per the paper's description, the custom ID search compares each record's
// identifier against a sorted search set with binary search, giving
// O(N log S) for N records and a search set of size S, while the custom
// histogram code organises bin counts as a slice-of-slices ("the
// difference in organization of the histogram bin counts array"), versus
// FastBit's flat array.
package scan

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/histogram"
	"repro/internal/obs"
	"repro/internal/query"
)

// CheckpointRows is the cancellation checkpoint interval: scan loops test
// the context once every CheckpointRows rows, so a canceled query stops
// within one interval while the per-row overhead stays unmeasurable.
const CheckpointRows = 64 * 1024

// checkpoint returns ctx.Err() at every CheckpointRows-th row; other rows
// cost a single mask-and-compare.
func checkpoint(ctx context.Context, row int) error {
	if row&(CheckpointRows-1) == 0 {
		return ctx.Err()
	}
	return nil
}

// Columns provides named in-memory columns for one timestep.
type Columns map[string][]float64

// rows returns the common row count, or an error when columns disagree.
func (c Columns) rows() (int, error) {
	n := -1
	for name, col := range c {
		if n == -1 {
			n = len(col)
		} else if len(col) != n {
			return 0, fmt.Errorf("scan: column %q has %d rows, expected %d", name, len(col), n)
		}
	}
	if n == -1 {
		n = 0
	}
	return n, nil
}

// getter returns a row-value accessor for the query evaluator. Missing
// variables read as NaN-free zero, which fails every strict comparison —
// callers should validate variables beforehand via ValidateVars.
func (c Columns) getter(row int) func(string) float64 {
	return func(name string) float64 {
		col, ok := c[name]
		if !ok {
			return 0
		}
		return col[row]
	}
}

// ValidateVars checks that every variable referenced by e is present.
func ValidateVars(c Columns, e query.Expr) error {
	for _, v := range query.Vars(e) {
		if _, ok := c[v]; !ok {
			return fmt.Errorf("scan: query references unknown variable %q", v)
		}
	}
	return nil
}

// Select returns the sorted row positions matching the expression, by
// evaluating it against every record.
func Select(c Columns, e query.Expr) ([]uint64, error) {
	return SelectCtx(context.Background(), c, e)
}

// SelectCtx is Select with cooperative cancellation: the scan aborts with
// ctx.Err() within CheckpointRows rows of ctx being canceled.
func SelectCtx(ctx context.Context, c Columns, e query.Expr) ([]uint64, error) {
	if err := ValidateVars(c, e); err != nil {
		return nil, err
	}
	n, err := c.rows()
	if err != nil {
		return nil, err
	}
	ctx, sp := startScanSpan(ctx, "scan-select", n)
	start := time.Now()
	var out []uint64
	for row := 0; row < n; row++ {
		if err := checkpoint(ctx, row); err != nil {
			sp.End()
			return nil, err
		}
		if e.Eval(c.getter(row)) {
			out = append(out, uint64(row))
		}
	}
	observeScan(ctx, n, time.Since(start).Seconds())
	sp.End()
	return out, nil
}

// Count returns the number of records matching the expression.
func Count(c Columns, e query.Expr) (uint64, error) {
	return CountCtx(context.Background(), c, e)
}

// CountCtx is Count with cooperative cancellation.
func CountCtx(ctx context.Context, c Columns, e query.Expr) (uint64, error) {
	if err := ValidateVars(c, e); err != nil {
		return 0, err
	}
	n, err := c.rows()
	if err != nil {
		return 0, err
	}
	ctx, sp := startScanSpan(ctx, "scan-count", n)
	start := time.Now()
	var cnt uint64
	for row := 0; row < n; row++ {
		if err := checkpoint(ctx, row); err != nil {
			sp.End()
			return 0, err
		}
		if e.Eval(c.getter(row)) {
			cnt++
		}
	}
	observeScan(ctx, n, time.Since(start).Seconds())
	sp.End()
	return cnt, nil
}

// Histogram2D computes an unconditional 2D histogram with a full pass over
// the two columns. Bin counts use a slice-of-slices layout, mirroring the
// paper's description of the custom code's memory organisation.
func Histogram2D(c Columns, xvar, yvar string, xEdges, yEdges []float64) (*histogram.Hist2D, error) {
	return ConditionalHistogram2D(c, xvar, yvar, nil, xEdges, yEdges)
}

// ConditionalHistogram2D computes a 2D histogram restricted to records
// matching cond (pass nil for unconditional). Every record is visited.
func ConditionalHistogram2D(c Columns, xvar, yvar string, cond query.Expr, xEdges, yEdges []float64) (*histogram.Hist2D, error) {
	return ConditionalHistogram2DCtx(context.Background(), c, xvar, yvar, cond, xEdges, yEdges)
}

// ConditionalHistogram2DCtx is ConditionalHistogram2D with cooperative
// cancellation at CheckpointRows intervals.
func ConditionalHistogram2DCtx(ctx context.Context, c Columns, xvar, yvar string, cond query.Expr, xEdges, yEdges []float64) (*histogram.Hist2D, error) {
	xs, ok := c[xvar]
	if !ok {
		return nil, fmt.Errorf("scan: unknown variable %q", xvar)
	}
	ys, ok := c[yvar]
	if !ok {
		return nil, fmt.Errorf("scan: unknown variable %q", yvar)
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("scan: column length mismatch %d vs %d", len(xs), len(ys))
	}
	if cond != nil {
		if err := ValidateVars(c, cond); err != nil {
			return nil, err
		}
	}
	lx, err := histogram.NewLocator(xEdges)
	if err != nil {
		return nil, fmt.Errorf("scan: x edges: %w", err)
	}
	ly, err := histogram.NewLocator(yEdges)
	if err != nil {
		return nil, fmt.Errorf("scan: y edges: %w", err)
	}
	ctx, sp := startScanSpan(ctx, "scan-hist2d", len(xs))
	start := time.Now()
	// Slice-of-slices bin counts: the custom code's layout.
	counts := make([][]uint64, ly.Bins())
	for i := range counts {
		counts[i] = make([]uint64, lx.Bins())
	}
	for row := range xs {
		if err := checkpoint(ctx, row); err != nil {
			sp.End()
			return nil, err
		}
		if cond != nil && !cond.Eval(c.getter(row)) {
			continue
		}
		ix := lx.Bin(xs[row])
		if ix < 0 {
			continue
		}
		iy := ly.Bin(ys[row])
		if iy < 0 {
			continue
		}
		counts[iy][ix]++
	}
	observeScan(ctx, len(xs), time.Since(start).Seconds())
	sp.End()
	h := &histogram.Hist2D{
		XVar: xvar, YVar: yvar,
		XEdges: xEdges, YEdges: yEdges,
		Counts: make([]uint64, lx.Bins()*ly.Bins()),
	}
	for iy, row := range counts {
		copy(h.Counts[iy*lx.Bins():(iy+1)*lx.Bins()], row)
	}
	return h, nil
}

// Histogram1D computes a conditional 1D histogram by full scan; cond may
// be nil.
func Histogram1D(c Columns, v string, cond query.Expr, edges []float64) (*histogram.Hist1D, error) {
	return Histogram1DCtx(context.Background(), c, v, cond, edges)
}

// Histogram1DCtx is Histogram1D with cooperative cancellation.
func Histogram1DCtx(ctx context.Context, c Columns, v string, cond query.Expr, edges []float64) (*histogram.Hist1D, error) {
	vs, ok := c[v]
	if !ok {
		return nil, fmt.Errorf("scan: unknown variable %q", v)
	}
	if cond != nil {
		if err := ValidateVars(c, cond); err != nil {
			return nil, err
		}
	}
	loc, err := histogram.NewLocator(edges)
	if err != nil {
		return nil, err
	}
	ctx, sp := startScanSpan(ctx, "scan-hist1d", len(vs))
	start := time.Now()
	h := &histogram.Hist1D{Var: v, Edges: edges, Counts: make([]uint64, loc.Bins())}
	for row := range vs {
		if err := checkpoint(ctx, row); err != nil {
			sp.End()
			return nil, err
		}
		if cond != nil && !cond.Eval(c.getter(row)) {
			continue
		}
		if i := loc.Bin(vs[row]); i >= 0 {
			h.Counts[i]++
		}
	}
	observeScan(ctx, len(vs), time.Since(start).Seconds())
	sp.End()
	return h, nil
}

// MinMax returns the minimum and maximum of a column by full scan.
func MinMax(values []float64) (lo, hi float64) {
	if len(values) == 0 {
		return 0, 0
	}
	lo, hi = values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// FindIDs returns the sorted row positions whose identifier appears in
// searchSet, using the paper's custom algorithm: one pass over all N
// records, binary-searching each identifier in the sorted set — O(N log S).
func FindIDs(ids []int64, searchSet []int64) []uint64 {
	out, _ := FindIDsCtx(context.Background(), ids, searchSet)
	return out
}

// FindIDsCtx is FindIDs with cooperative cancellation.
func FindIDsCtx(ctx context.Context, ids []int64, searchSet []int64) ([]uint64, error) {
	set := append([]int64(nil), searchSet...)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	ctx, sp := startScanSpan(ctx, "scan-find-ids", len(ids))
	start := time.Now()
	var out []uint64
	for row, id := range ids {
		if err := checkpoint(ctx, row); err != nil {
			sp.End()
			return nil, err
		}
		i := sort.Search(len(set), func(k int) bool { return set[k] >= id })
		if i < len(set) && set[i] == id {
			out = append(out, uint64(row))
		}
	}
	observeScan(ctx, len(ids), time.Since(start).Seconds())
	sp.End()
	return out, nil
}

// startScanSpan opens a span for one scan pass, annotated with the row
// count. The returned context carries the span for nested checkpoints.
func startScanSpan(ctx context.Context, name string, rows int) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, name)
	sp.SetAttr("rows", strconv.Itoa(rows))
	return ctx, sp
}
