#!/usr/bin/env bash
# Full reproduction pipeline: generate datasets, run the serial and
# parallel studies, regenerate the qualitative figures and produce the
# self-contained HTML report. Outputs land in ./out (override with $OUT).
#
# Usage:  scripts/reproduce.sh [small|full]
#   small  quick pass (~1 minute, default)
#   full   the EXPERIMENTS.md configuration (~10 minutes, ~1.5 GB of data)
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-small}"
OUT="${OUT:-out}"
mkdir -p "$OUT"

case "$MODE" in
small)
    SERIAL_STEPS=6;  SERIAL_PARTICLES=100000;  SERIAL_BEAM=500
    SCALE_STEPS=20;  SCALE_PARTICLES=20000;    SCALE_BEAM=100
    TRACK_HITS=100
    ;;
full)
    SERIAL_STEPS=6;  SERIAL_PARTICLES=1000000; SERIAL_BEAM=2000
    SCALE_STEPS=100; SCALE_PARTICLES=100000;   SCALE_BEAM=500
    TRACK_HITS=500
    ;;
*)
    echo "usage: $0 [small|full]" >&2; exit 2 ;;
esac

echo "== building tools"
go build ./...

echo "== generating serial dataset ($SERIAL_STEPS x $SERIAL_PARTICLES particles)"
go run ./cmd/lwfagen -out "$OUT/serial" -steps "$SERIAL_STEPS" \
    -particles "$SERIAL_PARTICLES" -beam "$SERIAL_BEAM" -q

echo "== generating scaling dataset ($SCALE_STEPS x $SCALE_PARTICLES particles)"
go run ./cmd/lwfagen -out "$OUT/scaling" -steps "$SCALE_STEPS" \
    -particles "$SCALE_PARTICLES" -beam "$SCALE_BEAM" -q

echo "== serial study (Figs. 11-13)"
go run ./cmd/histbench -data "$OUT/serial" -exp all -runs 3 \
    | tee "$OUT/serial_results.txt"

echo "== scaling study (Figs. 14-17 + scheduling ablation)"
go run ./cmd/scalebench -data "$OUT/scaling" -exp all \
    -track-hits "$TRACK_HITS" -schedules | tee "$OUT/scaling_results.txt"

echo "== qualitative figures (Figs. 2/4/5/9/10b)"
go run ./cmd/figures -data "$OUT/serial" -out "$OUT/figures"

echo "== beam quality history"
go run ./cmd/beamstats -data "$OUT/serial" -query "px > 5e10" \
    | tee "$OUT/beamstats.txt"

echo "== HTML report"
go run ./cmd/mkreport -data "$OUT/serial" -out "$OUT/report.html"

echo "== done; artifacts in $OUT/"
