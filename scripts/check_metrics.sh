#!/usr/bin/env bash
# check_metrics.sh — scrape a running qserve /metrics endpoint and verify
# the output is well-formed Prometheus text exposition (version 0.0.4)
# carrying the instruments every layer is expected to export.
#
# Usage: scripts/check_metrics.sh http://127.0.0.1:9090
#
# Checks:
#   1. every non-comment line matches  name{labels} value
#   2. every series is preceded by # HELP and # TYPE lines
#   3. required per-layer metrics are present (serve, fastbit, scan, cluster)
#   4. at least one histogram exports _bucket/_sum/_count with an +Inf bucket
set -euo pipefail

BASE="${1:?usage: $0 <qserve-admin-base-url>}"
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

curl -fsS "$BASE/metrics" >"$OUT"

fail() { echo "check_metrics: FAIL: $*" >&2; exit 1; }

# 1. Line format: metric lines are  name{k="v",...} value  with the value a
# float, integer, +Inf, -Inf or NaN. Comments must be # HELP or # TYPE.
awk '
/^#/ {
  if ($0 !~ /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* /) {
    print "bad comment line: " $0; bad = 1
  }
  next
}
/^$/ { next }
{
  if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN)$/) {
    print "bad metric line: " $0; bad = 1
  }
}
END { exit bad }
' "$OUT" || fail "malformed exposition lines"

# 2. Every sample name (stripped of histogram suffixes) has HELP and TYPE.
while read -r name; do
  base="${name%_bucket}"; base="${base%_sum}"; base="${base%_count}"
  grep -q "^# HELP $base " "$OUT" || grep -q "^# HELP $name " "$OUT" \
    || fail "missing # HELP for $name"
  grep -q "^# TYPE $base " "$OUT" || grep -q "^# TYPE $name " "$OUT" \
    || fail "missing # TYPE for $name"
done < <(grep -v '^#' "$OUT" | grep -v '^$' | sed 's/[{ ].*//' | sort -u)

# 3. Required instruments, at least one per layer of the stack.
for metric in \
  serve_requests_total serve_request_seconds_bucket serve_inflight_requests \
  serve_cache_hits_total serve_admission_admitted_total \
  serve_limit serve_brownout_active serve_degraded_total \
  fastbit_eval_rows_total fastbit_eval_seconds_bucket fastbit_candidate_check_fraction \
  scan_rows_total scan_seconds_bucket \
  cluster_rpc_calls_total cluster_unhealthy_workers cluster_hedges_total \
  serve_scatter_total serve_scatter_fragments_total serve_partial_total \
  shard_fragments_total shard_frag_cache_hits_total shard_frag_cache_misses_total; do
  grep -q "^$metric" "$OUT" || fail "missing required metric $metric"
done

# 4. Histogram invariants: an +Inf bucket exists and matches its _count.
grep -q 'le="+Inf"' "$OUT" || fail "no histogram exports an +Inf bucket"

# 5. Overload-control series: shed counters carry per-class labels, and
# the gauges/counters carry sane values (limit >= 1, counters >= 0 — the
# registry exports monotone counters, so a negative value means breakage).
for class in probe drill sweep ingest; do
  grep -q "^serve_shed_total{class=\"$class\"}" "$OUT" \
    || fail "serve_shed_total missing class=\"$class\" series"
  grep -q "^serve_admitted_total{class=\"$class\"}" "$OUT" \
    || fail "serve_admitted_total missing class=\"$class\" series"
done
for mode in coarse-cache index-only; do
  grep -q "^serve_degraded_total{mode=\"$mode\"}" "$OUT" \
    || fail "serve_degraded_total missing mode=\"$mode\" series"
done
awk '
/^serve_limit /            { if ($2+0 < 1)  { print "serve_limit " $2 " < 1"; bad = 1 } }
/^serve_brownout_active /  { if ($2+0 != 0 && $2+0 != 1) { print "serve_brownout_active " $2 " not 0/1"; bad = 1 } }
/^serve_shed_total\{/      { if ($2+0 < 0)  { print $0 " negative"; bad = 1 } }
/^serve_degraded_total\{/  { if ($2+0 < 0)  { print $0 " negative"; bad = 1 } }
END { exit bad }
' "$OUT" || fail "overload-control series out of range"

# 6. Resilience control-plane series: breaker trips, retry-budget levels
# and deadline-budget shed counters are present; per-worker breaker state,
# where exported, is a valid state (0 closed, 1 half-open, 2 open).
for metric in \
  cluster_breaker_trips_total cluster_breaker_open \
  cluster_retry_budget_tokens cluster_retry_budget_exhausted_total \
  shard_budget_shed_total shard_budget_skips_total shard_reply_corrupt_total; do
  grep -q "^$metric" "$OUT" || fail "missing required metric $metric"
done
awk '
/^cluster_breaker_state\{/      { v = $2+0; if (v != 0 && v != 1 && v != 2) { print $0 " not a breaker state"; bad = 1 } }
/^cluster_breaker_open /        { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
/^cluster_retry_budget_tokens / { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
END { exit bad }
' "$OUT" || fail "resilience series out of range"

# 7. Scatter-gather series: partial merges can never exceed scatters, and
# when any scatter happened the fragment fan-out is at least one per scatter.
awk '
/^serve_scatter_total /           { scat = $2+0 }
/^serve_partial_total /           { part = $2+0 }
/^serve_scatter_fragments_total / { frag = $2+0 }
END {
  if (part > scat) { print "serve_partial_total " part " > serve_scatter_total " scat; exit 1 }
  if (scat > 0 && frag < scat) { print "serve_scatter_fragments_total " frag " < scatters " scat; exit 1 }
}
' "$OUT" || fail "scatter-gather series inconsistent"

# 8. Observability-plane series: the explain counter, the multi-window
# SLO burn-rate gauges, and the flight-recorder counters. Burn rates are
# ratios (>= 0); a negative or missing window label means the monitor
# wiring broke.
for metric in \
  serve_explain_total serve_federation_errors_total \
  serve_slo_breaches_total serve_flight_captures_total serve_flight_dropped_total; do
  grep -q "^$metric" "$OUT" || fail "missing required metric $metric"
done
for window in fast slow; do
  grep -q "^serve_slo_burn_rate{window=\"$window\"}" "$OUT" \
    || fail "serve_slo_burn_rate missing window=\"$window\" series"
done
awk '
/^serve_slo_burn_rate\{/       { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
/^serve_slo_breaches_total /   { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
/^serve_flight_captures_total/ { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
END { exit bad }
' "$OUT" || fail "observability series out of range"

# 9. Analysis-session series: the gauges and counters the session layer
# exports, with reason-labeled evictions. Gauges are sizes (>= 0). With
# REQUIRE_SESSION_REUSE=1 (set by CI jobs that just drove a refinement
# workload) the reuse counter must actually have incremented.
for metric in \
  session_active session_selections session_bytes \
  session_refine_reuse_total session_refine_scratch_total \
  session_partial_rejects_total; do
  grep -q "^$metric" "$OUT" || fail "missing required metric $metric"
done
for reason in ttl count bytes; do
  grep -q "^session_evictions_total{reason=\"$reason\"}" "$OUT" \
    || fail "session_evictions_total missing reason=\"$reason\" series"
done
awk -v need_reuse="${REQUIRE_SESSION_REUSE:-0}" '
/^session_active /              { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
/^session_bytes /               { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
/^session_selections /          { if ($2+0 < 0) { print $0 " negative"; bad = 1 } }
/^session_refine_reuse_total /  { reuse = $2+0 }
END {
  if (need_reuse+0 == 1 && reuse <= 0) {
    print "session_refine_reuse_total did not increment"; bad = 1
  }
  exit bad
}
' "$OUT" || fail "session series out of range"

echo "check_metrics: OK ($(grep -cv '^#' "$OUT") samples, $(grep -c '^# TYPE' "$OUT") families)"
