package repro

// Benchmark harness: one benchmark family per figure of the paper's
// evaluation section, plus ablations for the design choices DESIGN.md
// calls out. The cmd/histbench and cmd/scalebench executables produce the
// paper-formatted tables; these testing.B benchmarks regenerate the same
// measurements under `go test -bench`.
//
// The shared dataset is generated once per process into a temp directory
// (generation time is not benchmarked).

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/bitmap"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/sim"
)

const (
	benchSteps     = 6
	benchParticles = 120000
	benchBeam      = 400
)

var (
	benchOnce sync.Once
	benchDir  string
	benchErr  error
)

func benchDataset(b *testing.B) string {
	b.Helper()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "repro-bench-*")
		if err != nil {
			benchErr = err
			return
		}
		cfg := sim.DefaultConfig()
		cfg.Steps = benchSteps
		cfg.BackgroundPerStep = benchParticles
		cfg.BeamParticles = benchBeam
		if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{
			Index: fastbit.IndexOptions{Bins: 256},
		}); err != nil {
			benchErr = err
			return
		}
		benchDir = dir
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDir
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchDir != "" {
		os.RemoveAll(benchDir)
	}
	os.Exit(code)
}

func benchStep(b *testing.B) *fastquery.Step {
	b.Helper()
	src, err := fastquery.Open(benchDataset(b))
	if err != nil {
		b.Fatal(err)
	}
	st, err := src.OpenStep(benchSteps / 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

// --- Fig. 11: unconditional 2D histograms vs bin count ---------------------

func BenchmarkFig11UnconditionalHistogram(b *testing.B) {
	st := benchStep(b)
	for _, bins := range []int{32, 256, 1024} {
		for _, variant := range []struct {
			name    string
			binning histogram.Binning
			backend fastquery.Backend
		}{
			{"FastBitRegular", histogram.Uniform, fastquery.FastBit},
			{"FastBitAdaptive", histogram.Adaptive, fastquery.FastBit},
			{"CustomRegular", histogram.Uniform, fastquery.Scan},
		} {
			b.Run(fmt.Sprintf("%s/bins=%d", variant.name, bins), func(b *testing.B) {
				spec := histogram.NewSpec2D("x", "px", bins, bins).WithBinning(variant.binning)
				for i := 0; i < b.N; i++ {
					if _, err := st.Histogram2D(nil, spec, variant.backend); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 12: conditional 2D histograms vs hit count ------------------------

// benchThresholds returns px thresholds for approximate hit-count targets.
func benchThresholds(b *testing.B, st *fastquery.Step, targets []int) map[int]float64 {
	b.Helper()
	px, err := st.ReadColumn("px")
	if err != nil {
		b.Fatal(err)
	}
	sorted := append([]float64(nil), px...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	out := map[int]float64{}
	for _, k := range targets {
		if k > 0 && k < len(sorted) {
			out[k] = (sorted[k-1] + sorted[k]) / 2
		}
	}
	return out
}

func BenchmarkFig12ConditionalHistogram(b *testing.B) {
	st := benchStep(b)
	thresholds := benchThresholds(b, st, []int{100, 10000, int(st.Rows()) * 3 / 4})
	keys := make([]int, 0, len(thresholds))
	for k := range thresholds {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, hits := range keys {
		cond := &query.Compare{Var: "px", Op: query.GT, Value: thresholds[hits]}
		for _, variant := range []struct {
			name    string
			binning histogram.Binning
			backend fastquery.Backend
		}{
			{"FastBitRegular", histogram.Uniform, fastquery.FastBit},
			{"FastBitAdaptive", histogram.Adaptive, fastquery.FastBit},
			{"CustomRegular", histogram.Uniform, fastquery.Scan},
		} {
			b.Run(fmt.Sprintf("%s/hits=%d", variant.name, hits), func(b *testing.B) {
				spec := histogram.NewSpec2D("x", "px", 1024, 1024).WithBinning(variant.binning)
				for i := 0; i < b.N; i++ {
					if _, err := st.Histogram2D(cond, spec, variant.backend); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Fig. 13: identifier queries vs search-set size -------------------------

func BenchmarkFig13IDQuery(b *testing.B) {
	st := benchStep(b)
	all, err := st.ReadIDs()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{10, 1000, 100000} {
		if size > len(all) {
			continue
		}
		set := make([]int64, size)
		for i := range set {
			set[i] = all[rng.Intn(len(all))]
		}
		for _, variant := range []struct {
			name    string
			backend fastquery.Backend
		}{
			{"FastBit", fastquery.FastBit},
			{"Custom", fastquery.Scan},
		} {
			b.Run(fmt.Sprintf("%s/set=%d", variant.name, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := st.FindIDs(set, variant.backend); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figs. 14/15: parallel histogram computation ----------------------------

func BenchmarkFig14ParallelHistograms(b *testing.B) {
	dir := benchDataset(b)
	src, err := fastquery.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	st, err := src.OpenStep(benchSteps - 1)
	if err != nil {
		b.Fatal(err)
	}
	_, hi, err := st.MinMax("px")
	st.Close()
	if err != nil {
		b.Fatal(err)
	}
	cond := &query.Compare{Var: "px", Op: query.GT, Value: 0.6 * hi}

	makeTasks := func(c query.Expr, backend fastquery.Backend) []cluster.Task {
		tasks := make([]cluster.Task, src.Steps())
		for t := 0; t < src.Steps(); t++ {
			t := t
			tasks[t] = cluster.Task{Step: t, Run: func() (uint64, int, error) {
				step, err := src.OpenStep(t)
				if err != nil {
					return 0, 0, err
				}
				defer step.Close()
				spec := histogram.NewSpec2D("x", "px", 1024, 1024)
				if _, err := step.Histogram2D(c, spec, backend); err != nil {
					return 0, 0, err
				}
				return step.IOBytes(), 2, nil
			}}
		}
		return tasks
	}
	workers := runtime.GOMAXPROCS(0)
	for _, variant := range []struct {
		name    string
		cond    query.Expr
		backend fastquery.Backend
	}{
		{"FastBitUncond", nil, fastquery.FastBit},
		{"CustomUncond", nil, fastquery.Scan},
		{"FastBitCond", cond, fastquery.FastBit},
		{"CustomCond", cond, fastquery.Scan},
	} {
		b.Run(fmt.Sprintf("%s/workers=%d", variant.name, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Run(makeTasks(variant.cond, variant.backend), workers, cluster.IOModel{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figs. 16/17: parallel particle tracking --------------------------------

func BenchmarkFig16ParallelTracking(b *testing.B) {
	dir := benchDataset(b)
	ex, err := core.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	last := ex.Steps() - 1
	_, hi, err := ex.VarRange(last, "px")
	if err != nil {
		b.Fatal(err)
	}
	sel, err := ex.Select(last, fmt.Sprintf("px > %g", 0.75*hi))
	if err != nil {
		b.Fatal(err)
	}
	ids := sel.IDs()
	if len(ids) == 0 {
		b.Fatal("no particles selected")
	}
	workers := runtime.GOMAXPROCS(0)
	for _, variant := range []struct {
		name    string
		backend fastquery.Backend
	}{
		{"FastBit", fastquery.FastBit},
		{"Custom", fastquery.Scan},
	} {
		b.Run(fmt.Sprintf("%s/ids=%d/workers=%d", variant.name, len(ids), workers), func(b *testing.B) {
			ex.SetBackend(variant.backend)
			defer ex.SetBackend(fastquery.FastBit)
			for i := 0; i < b.N; i++ {
				if _, err := ex.TrackIDs(ids, 0, last, core.TrackOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 2: rendering modes -------------------------------------------------

func BenchmarkFig02Rendering(b *testing.B) {
	dir := benchDataset(b)
	ex, err := core.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	step := benchSteps / 2
	vars := []string{"x", "y", "px", "py"}
	opt := core.DefaultPlotOptions()

	b.Run("HistogramBased/bins=700", func(b *testing.B) {
		o := opt
		o.ContextBins = 700
		for i := 0; i < b.N; i++ {
			if _, err := ex.ContextFocusPlot(step, vars, "", "", o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HistogramBased/bins=80", func(b *testing.B) {
		o := opt
		o.ContextBins = 80
		for i := 0; i < b.N; i++ {
			if _, err := ex.ContextFocusPlot(step, vars, "", "", o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LineBased/subset", func(b *testing.B) {
		// Polyline rendering cost is proportional to record count, so the
		// paper only uses it for subsets; benchmark it on the accelerated
		// tail.
		for i := 0; i < b.N; i++ {
			if _, err := ex.LinePlot(step, vars, "px > 1e9", 0.35, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figs. 3/4: uniform vs adaptive binning ---------------------------------

func BenchmarkFig04AdaptiveVsUniform(b *testing.B) {
	dir := benchDataset(b)
	ex, err := core.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	step := benchSteps / 2
	vars := []string{"x", "y", "px", "py"}
	for _, variant := range []struct {
		name    string
		binning histogram.Binning
	}{
		{"Uniform32", histogram.Uniform},
		{"Adaptive32", histogram.Adaptive},
	} {
		b.Run(variant.name, func(b *testing.B) {
			o := core.DefaultPlotOptions()
			o.ContextBins = 32
			o.Binning = variant.binning
			for i := 0; i < b.N; i++ {
				if _, err := ex.ContextFocusPlot(step, vars, "", "", o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Preprocessing: index construction and (de)serialization -----------------

// The paper notes FastBit indices "can be constructed much faster than
// others" (Section II-B); this benchmark measures our builder's
// throughput, plus the sidecar file round trip.
func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	n := 500000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e9
	}
	for _, opt := range []struct {
		name string
		o    fastbit.IndexOptions
	}{
		{"Uniform256", fastbit.IndexOptions{Bins: 256}},
		{"Uniform2048", fastbit.IndexOptions{Bins: 2048}},
		{"Precision2", fastbit.IndexOptions{Precision: 2}},
	} {
		b.Run(opt.name, func(b *testing.B) {
			b.SetBytes(int64(8 * n))
			for i := 0; i < b.N; i++ {
				if _, err := fastbit.BuildIndex("v", vals, opt.o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("IDIndex", func(b *testing.B) {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = rng.Int63n(1 << 40)
		}
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			fastbit.BuildIDIndex(ids)
		}
	})
}

func BenchmarkIndexSerialization(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n := 200000
	cols := map[string][]float64{}
	for _, name := range []string{"x", "px"} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		cols[name] = vals
	}
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	si, err := fastbit.BuildStepIndex(cols, ids, "id", fastbit.IndexOptions{Bins: 256})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := si.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.Run("Write", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if _, err := si.WriteTo(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Read", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := fastbit.ReadStepIndex(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: WAH compression vs uncompressed bit sets ----------------------

func BenchmarkAblationWAH(b *testing.B) {
	// Sparse clustered bitmaps: the index workload WAH targets.
	const n = 1 << 22
	mkVec := func(seed int64) *bitmap.Vector {
		rng := rand.New(rand.NewSource(seed))
		v := bitmap.New(n)
		at := uint64(0)
		for at < n {
			run := uint64(rng.Intn(4096) + 1)
			if at+run > n {
				run = n - at
			}
			v.AppendRun(rng.Intn(8) == 0, run)
			at += run
		}
		return v
	}
	va, vb := mkVec(1), mkVec(2)
	sa, sb := bitmap.VectorToBitSet(va), bitmap.VectorToBitSet(vb)

	b.Run("WAH/And", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			va.And(vb)
		}
	})
	b.Run("BitSet/And", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.And(sb)
		}
	})
	b.Run("WAH/Count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			va.Count()
		}
	})
	b.Run("BitSet/Count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.Count()
		}
	})
	b.ReportMetric(float64(va.SizeBytes()), "wah-bytes")
	b.ReportMetric(float64(sa.SizeBytes()), "bitset-bytes")
}

// --- Ablation: index bin count ----------------------------------------------

func BenchmarkAblationBinning(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 200000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e9
	}
	raw := func(pos []uint64) ([]float64, error) {
		out := make([]float64, len(pos))
		for i, p := range pos {
			out[i] = vals[p]
		}
		return out, nil
	}
	for _, bins := range []int{16, 256, 2048} {
		ix, err := fastbit.BuildIndex("v", vals, fastbit.IndexOptions{Bins: bins})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			iv := query.Interval{Lo: 1.2345e9, Hi: 2.3456e9}
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Evaluate(iv, raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: precision binning answers low-precision queries index-only ----

func BenchmarkAblationPrecision(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	vals := make([]float64, 200000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e9
	}
	raw := func(pos []uint64) ([]float64, error) {
		out := make([]float64, len(pos))
		for i, p := range pos {
			out[i] = vals[p]
		}
		return out, nil
	}
	uniform, err := fastbit.BuildIndex("v", vals, fastbit.IndexOptions{Bins: 256})
	if err != nil {
		b.Fatal(err)
	}
	precise, err := fastbit.BuildIndex("v", vals, fastbit.IndexOptions{Precision: 2})
	if err != nil {
		b.Fatal(err)
	}
	iv := query.Interval{Lo: 2.5e8, Hi: 1.5e9} // 2-digit constants
	// The headline property is the candidate-check count: precision bins
	// answer low-precision queries from the index alone (checks = 0),
	// which is what matters when the raw data lives on disk rather than
	// in this benchmark's in-memory reader.
	b.Run("UniformBins", func(b *testing.B) {
		var checks uint64
		for i := 0; i < b.N; i++ {
			_, st, err := uniform.Evaluate(iv, raw)
			if err != nil {
				b.Fatal(err)
			}
			checks = st.CandidateChecks
		}
		b.ReportMetric(float64(checks), "candidate-checks")
	})
	b.Run("PrecisionBins", func(b *testing.B) {
		var checks uint64
		for i := 0; i < b.N; i++ {
			_, st, err := precise.Evaluate(iv, raw)
			if err != nil {
				b.Fatal(err)
			}
			checks = st.CandidateChecks
		}
		b.ReportMetric(float64(checks), "candidate-checks")
	})
}

// --- Ablation: exact (per-distinct-value) vs binned index on categorical data

func BenchmarkAblationExactIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	n := 500000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(rng.Intn(8)) // 8 categories
	}
	raw := func(pos []uint64) ([]float64, error) {
		out := make([]float64, len(pos))
		for i, p := range pos {
			out[i] = vals[p]
		}
		return out, nil
	}
	exact, err := fastbit.BuildIndex("cat", vals, fastbit.IndexOptions{Exact: true})
	if err != nil {
		b.Fatal(err)
	}
	binned, err := fastbit.BuildIndex("cat", vals, fastbit.IndexOptions{Bins: 4})
	if err != nil {
		b.Fatal(err)
	}
	iv := query.Interval{Lo: 3, Hi: 3} // equality on one category
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := exact.Evaluate(iv, raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Binned4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := binned.Evaluate(iv, raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: two-step gather-then-bin vs bitmap AND-count histograms -------

func BenchmarkAblationHistogramStrategy(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := 200000
	px := make([]float64, n)
	y := make([]float64, n)
	for i := range px {
		px[i] = rng.NormFloat64() * 1e9
		y[i] = rng.NormFloat64()
	}
	si, err := fastbit.BuildStepIndex(map[string][]float64{"px": px, "y": y}, nil, "", fastbit.IndexOptions{Bins: 256})
	if err != nil {
		b.Fatal(err)
	}
	ev := si.Evaluator(fastbit.MemReader{"px": px, "y": y})
	for _, sel := range []struct {
		name string
		cond string
	}{
		{"Selective", "y > 2.5"},   // few hits: gather wins
		{"Unselective", "y > -10"}, // nearly all hits: bitmap counting wins
	} {
		cond := query.MustParse(sel.cond)
		b.Run("TwoStepGather/"+sel.name, func(b *testing.B) {
			spec := histogram.NewSpec1D("px", 256)
			spec.Lo, spec.Hi = si.Columns["px"].Min(), si.Columns["px"].Max()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Histogram1D(cond, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("BitmapCount/"+sel.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ev.Histogram1DFromBitmaps(cond, "px"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: strided vs blocked timestep assignment ------------------------

func BenchmarkAblationAssignment(b *testing.B) {
	// Tasks with a linear duration ramp (later timesteps cost more, as
	// particle counts grow): strided spreads the expensive tail across
	// nodes, blocked piles it onto the last node.
	results := make([]cluster.Result, 100)
	for i := range results {
		results[i].Wall = time.Duration(i+1) * 100 * time.Microsecond
	}
	for _, variant := range []struct {
		name   string
		assign func(nTasks, nodes int) cluster.Assignment
	}{
		{"Strided", cluster.Strided},
		{"Blocked", cluster.Blocked},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				pts := cluster.StrongScaling(results, []int{10}, variant.assign)
				worst = pts[0].Speedup
			}
			b.ReportMetric(worst, "speedup@10nodes")
		})
	}
}
