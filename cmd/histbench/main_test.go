package main

import "testing"

func TestHitTargets(t *testing.T) {
	got := hitTargets(100000)
	// Decades 10..10000 plus half and 90% marks.
	want := map[uint64]bool{10: true, 100: true, 1000: true, 10000: true, 50000: true, 90000: true}
	if len(got) != len(want) {
		t.Fatalf("hitTargets = %v", got)
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("unexpected target %d in %v", k, got)
		}
	}
}

func TestMaxDuration(t *testing.T) {
	if maxDuration(3, 5) != 5 || maxDuration(5, 3) != 5 {
		t.Fatal("maxDuration wrong")
	}
}
