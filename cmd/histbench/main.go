// Command histbench reproduces the paper's serial performance study:
//
//	-exp fig11  unconditional 2D histograms vs bin count   (paper Fig. 11)
//	-exp fig12  conditional 2D histograms vs hit count     (paper Fig. 12)
//	-exp fig13  identifier queries vs hit count            (paper Fig. 13)
//	-exp all    all of the above
//
// Each experiment compares the FastBit bitmap-index backend against the
// "Custom" sequential-scan baseline, exactly as the paper's charts do.
// Absolute times depend on the machine and generated dataset size; the
// shapes — FastBit's insensitivity to bin count, its dominance at low hit
// counts, the crossover for very unselective conditions, and the
// orders-of-magnitude gap on identifier queries — reproduce the paper's.
//
// Usage:
//
//	lwfagen -out /tmp/lwfa -steps 8 -particles 500000
//	histbench -data /tmp/lwfa -step 5 -exp all
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("histbench: ")

	var (
		data = flag.String("data", "", "dataset directory (required)")
		step = flag.Int("step", -1, "timestep to benchmark (-1 = middle)")
		exp  = flag.String("exp", "all", "fig11 | fig12 | fig13 | all")
		runs = flag.Int("runs", 3, "repetitions per measurement (median reported)")
		csv  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	src, err := fastquery.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	t := *step
	if t < 0 {
		t = src.Steps() / 2
	}
	b := bench{src: src, step: t, runs: *runs, csv: *csv}
	switch *exp {
	case "fig11":
		err = b.fig11()
	case "fig12":
		err = b.fig12()
	case "fig13":
		err = b.fig13()
	case "all":
		if err = b.fig11(); err == nil {
			if err = b.fig12(); err == nil {
				err = b.fig13()
			}
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type bench struct {
	src  *fastquery.Source
	step int
	runs int
	csv  bool
}

func (b *bench) emit(t *report.Table) error {
	if b.csv {
		return t.FprintCSV(os.Stdout)
	}
	return t.Fprint(os.Stdout)
}

func (b *bench) open() (*fastquery.Step, error) { return b.src.OpenStep(b.step) }

// fig11: unconditional histograms vs bin count.
func (b *bench) fig11() error {
	st, err := b.open()
	if err != nil {
		return err
	}
	defer st.Close()
	rows, _ := st.Rows(), 0
	table := report.NewTable(
		fmt.Sprintf("Fig 11 — serial unconditional 2D histograms (x, px), step %d, %d records", b.step, rows),
		"bins", "fastbit_regular_s", "fastbit_adaptive_s", "custom_regular_s")
	for _, bins := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		specU := histogram.NewSpec2D("x", "px", bins, bins)
		specA := specU.WithBinning(histogram.Adaptive)
		fbU, err := report.MedianTime(b.runs, func() error {
			_, err := st.Histogram2D(nil, specU, fastquery.FastBit)
			return err
		})
		if err != nil {
			return err
		}
		fbA, err := report.MedianTime(b.runs, func() error {
			_, err := st.Histogram2D(nil, specA, fastquery.FastBit)
			return err
		})
		if err != nil {
			return err
		}
		cu, err := report.MedianTime(b.runs, func() error {
			_, err := st.Histogram2D(nil, specU, fastquery.Scan)
			return err
		})
		if err != nil {
			return err
		}
		table.AddRow(fmt.Sprintf("%dx%d", bins, bins),
			report.Seconds(fbU), report.Seconds(fbA), report.Seconds(cu))
	}
	return b.emit(table)
}

// hitThresholds derives px thresholds yielding approximately the target
// hit counts, by sorting the column once (untimed setup).
func hitThresholds(st *fastquery.Step, targets []uint64) (map[uint64]float64, error) {
	px, err := st.ReadColumn("px")
	if err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), px...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	out := map[uint64]float64{}
	for _, k := range targets {
		if k == 0 || k >= uint64(len(sorted)) {
			continue
		}
		out[k] = (sorted[k-1] + sorted[k]) / 2
	}
	return out, nil
}

func hitTargets(n uint64) []uint64 {
	var out []uint64
	for k := uint64(10); k < n; k *= 10 {
		out = append(out, k)
	}
	out = append(out, n/2, n*9/10)
	return out
}

// fig12: conditional histograms vs hit count at fixed 1024x1024 bins.
func (b *bench) fig12() error {
	st, err := b.open()
	if err != nil {
		return err
	}
	defer st.Close()
	thresholds, err := hitThresholds(st, hitTargets(st.Rows()))
	if err != nil {
		return err
	}
	targets := make([]uint64, 0, len(thresholds))
	for k := range thresholds {
		targets = append(targets, k)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	table := report.NewTable(
		fmt.Sprintf("Fig 12 — serial conditional 2D histograms (x, px), 1024x1024 bins, step %d", b.step),
		"hits", "threshold", "fastbit_regular_s", "fastbit_adaptive_s", "custom_regular_s")
	for _, k := range targets {
		thr := thresholds[k]
		cond := &query.Compare{Var: "px", Op: query.GT, Value: thr}
		specU := histogram.NewSpec2D("x", "px", 1024, 1024)
		specA := specU.WithBinning(histogram.Adaptive)
		hits, err := st.Count(cond, fastquery.FastBit)
		if err != nil {
			return err
		}
		fbU, err := report.MedianTime(b.runs, func() error {
			_, err := st.Histogram2D(cond, specU, fastquery.FastBit)
			return err
		})
		if err != nil {
			return err
		}
		fbA, err := report.MedianTime(b.runs, func() error {
			_, err := st.Histogram2D(cond, specA, fastquery.FastBit)
			return err
		})
		if err != nil {
			return err
		}
		cu, err := report.MedianTime(b.runs, func() error {
			_, err := st.Histogram2D(cond, specU, fastquery.Scan)
			return err
		})
		if err != nil {
			return err
		}
		table.AddRow(fmt.Sprintf("%d", hits), fmt.Sprintf("%.4g", thr),
			report.Seconds(fbU), report.Seconds(fbA), report.Seconds(cu))
	}
	return b.emit(table)
}

// fig13: identifier queries vs search-set size.
func (b *bench) fig13() error {
	st, err := b.open()
	if err != nil {
		return err
	}
	defer st.Close()
	all, err := st.ReadIDs()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	table := report.NewTable(
		fmt.Sprintf("Fig 13 — serial identifier queries, step %d, %d records", b.step, len(all)),
		"set_size", "hits", "fastbit_s", "custom_s", "speedup")
	for _, size := range []int{10, 100, 1000, 10000, 100000, 1000000} {
		if size > len(all) {
			break
		}
		set := make([]int64, size)
		for i := range set {
			set[i] = all[rng.Intn(len(all))]
		}
		var hits int
		fb, err := report.MedianTime(b.runs, func() error {
			pos, err := st.FindIDs(set, fastquery.FastBit)
			hits = len(pos)
			return err
		})
		if err != nil {
			return err
		}
		cu, err := report.MedianTime(b.runs, func() error {
			_, err := st.FindIDs(set, fastquery.Scan)
			return err
		})
		if err != nil {
			return err
		}
		speedup := float64(cu) / float64(maxDuration(fb, time.Nanosecond))
		table.AddRow(fmt.Sprintf("%d", size), fmt.Sprintf("%d", hits),
			report.Seconds(fb), report.Seconds(cu), fmt.Sprintf("%.1fx", speedup))
	}
	return b.emit(table)
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
