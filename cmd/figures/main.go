// Command figures regenerates the paper's qualitative figures (2, 3/4, 5,
// 9 and the 10b density substitute) as PNGs from a dataset, producing a
// gallery that mirrors the paper's rendering comparisons:
//
//	fig02a_lines.png        traditional polyline parallel coordinates
//	fig02b_hist700.png      histogram-based, 700 bins/axis
//	fig02c_lowgamma.png     same, low gamma (sparse bins culled)
//	fig02d_hist80.png       same, 80 bins/axis
//	fig04a_uniform32.png    32x32 uniform binning
//	fig04b_adaptive32.png   32x32 adaptive (equal-weight) binning
//	fig05_selection.png     context + focus beam selection
//	fig09_temporal.png      temporal parallel coordinates
//	fig10b_density.png      particle density + selection (volume-rendering
//	                        substitute)
//
// Usage:
//
//	figures -data data/lwfa -out figures/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/render"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	var (
		data  = flag.String("data", "", "dataset directory (required)")
		out   = flag.String("out", "figures", "output directory")
		step  = flag.Int("step", -1, "timestep for the static figures (-1 = last)")
		focus = flag.String("focus", "", "beam selection query (default: derived px threshold)")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	ex, err := core.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	t := *step
	if t < 0 {
		t = ex.Steps() - 1
	}
	sel := *focus
	if sel == "" {
		_, hi, err := ex.VarRange(t, "px")
		if err != nil {
			log.Fatal(err)
		}
		sel = fmt.Sprintf("px > %g", 0.5*hi)
	}
	vars := []string{"x", "y", "px", "py"}

	save := func(name string, c *render.Canvas, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		path := filepath.Join(*out, name)
		if err := c.SavePNG(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	// Fig. 2a: traditional line-based parallel coordinates of the focus
	// subset (polylines over everything would saturate, which is the
	// paper's point; the subset keeps the figure legible).
	c, err := ex.LinePlot(t, vars, sel, 0.3, core.DefaultPlotOptions())
	save("fig02a_lines.png", c, err)

	// Fig. 2b: histogram-based, high resolution.
	opt := core.DefaultPlotOptions()
	opt.ContextBins = 700
	c, err = ex.ContextFocusPlot(t, vars, "", "", opt)
	save("fig02b_hist700.png", c, err)

	// Fig. 2c: same with low gamma — sparse bins culled.
	opt.Gamma = 0.35
	c, err = ex.ContextFocusPlot(t, vars, "", "", opt)
	save("fig02c_lowgamma.png", c, err)

	// Fig. 2d: 80 bins per axis.
	opt = core.DefaultPlotOptions()
	opt.ContextBins = 80
	c, err = ex.ContextFocusPlot(t, vars, "", "", opt)
	save("fig02d_hist80.png", c, err)

	// Figs. 3/4: 32x32 uniform vs adaptive binning.
	opt = core.DefaultPlotOptions()
	opt.ContextBins = 32
	c, err = ex.ContextFocusPlot(t, vars, "", sel, opt)
	save("fig04a_uniform32.png", c, err)
	opt.Binning = histogram.Adaptive
	c, err = ex.ContextFocusPlot(t, vars, "", sel, opt)
	save("fig04b_adaptive32.png", c, err)

	// Fig. 5: beam selection, context + focus at full resolution.
	c, err = ex.ContextFocusPlot(t, vars, "", sel, core.DefaultPlotOptions())
	save("fig05_selection.png", c, err)

	// Fig. 9: temporal parallel coordinates of the selection over the
	// second half of the run.
	var steps []int
	for s := ex.Steps() / 2; s < ex.Steps(); s += 2 {
		steps = append(steps, s)
	}
	c, err = ex.TemporalPlot(steps, []string{"x", "xrel", "px", "y"}, sel, core.DefaultPlotOptions())
	save("fig09_temporal.png", c, err)

	// Fig. 10b substitute: particle density heat map with the selection.
	c, err = ex.DensityPlot(t, "x", "y", 256, sel, core.DefaultScatterOptions())
	save("fig10b_density.png", c, err)
}
