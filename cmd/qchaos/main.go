// Command qchaos is the chaos harness for the sharded serving tier: it
// stands up a 3-shard fleet plus frontend in one process, wraps every
// shard behind seeded fault injection, and drives query load through a
// schedule of fault shapes — stall-then-answer, network partition,
// corrupted replies, truncated replies, crash-and-restart — asserting the
// resilience invariants the control plane promises:
//
//  1. every response is either byte-identical to a fault-free baseline or
//     explicitly marked partial/degraded — never silently wrong;
//  2. no request outlives its deadline beyond a bounded slack;
//  3. after faults heal, the breakers re-close and the fleet returns to
//     100% exact answers within a bounded recovery window;
//  4. the process leaks no goroutines across the whole schedule.
//
// It also measures the circuit breakers' contribution directly: the same
// dead-shard scenario is driven through a breakers-enabled and a
// breakers-disabled frontend, and the steady-state p99s land side by side
// in the report.
//
// The full run is deterministic for a given -fault-seed; each faultnet
// listener logs its seed and schedule so any run can be replayed. Results
// are written as JSON (-out, default BENCH_chaos.json) and the process
// exits non-zero on any invariant violation, so CI can gate on it.
//
// Usage:
//
//	qchaos                         # synthesizes a small dataset
//	qchaos -data /tmp/lwfa -fault-seed 42 -out BENCH_chaos.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/faultnet"
	"repro/internal/fastbit"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sim"
)

const (
	numShards     = 3
	execTimeout   = 2 * time.Second
	deadlineSlack = 1 * time.Second  // invariant 2: request wall time <= execTimeout + this
	recoveryLimit = 15 * time.Second // invariant 3: heal -> 100% exact within this
	driveConc     = 8
)

// node is one shard worker with a kill/restart cycle: the listener address
// stays stable across restarts so the frontend pool reconnects to the
// "same" shard after a crash.
type node struct {
	idx  int
	addr string
	seed int64
	dir  string
	ex   *shard.Executor
	srv  *cluster.Server
	fl   *faultnet.Listener
}

func (n *node) start() error {
	srv, err := shard.NewServer(shard.NewService(n.ex, nil), n.dir)
	if err != nil {
		return err
	}
	addr := n.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var l net.Listener
	for attempt := 0; ; attempt++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		// A restart can race the dying listener's port release.
		if attempt >= 50 {
			srv.Close()
			return fmt.Errorf("shard %d: listen %s: %w", n.idx, addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	n.addr = l.Addr().String()
	n.fl = faultnet.Wrap(l, faultnet.Config{Seed: n.seed})
	n.srv = srv
	srv.Serve(n.fl)
	return nil
}

func (n *node) kill() {
	n.fl.Kill()
	n.srv.Close()
}

func (n *node) close() {
	n.kill()
	n.ex.Close()
}

// result is one driven request's outcome.
type result struct {
	path    string
	code    int
	partial bool // X-Partial or X-Degraded: explicitly marked non-exact
	dur     time.Duration
	body    map[string]any
	err     error
}

// phaseReport is one schedule phase's roll-up in BENCH_chaos.json.
type phaseReport struct {
	Name       string  `json:"name"`
	Requests   int     `json:"requests"`
	Exact      int     `json:"exact"`
	Partial    int     `json:"partial"`
	Errors     int     `json:"errors"`
	Violations int     `json:"violations"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	RecoveryMS float64 `json:"recovery_ms"` // heal -> first exact answer with breakers closed
}

type killShardReport struct {
	BreakersOnP99MS  float64 `json:"breakers_on_p99_ms"`
	BreakersOffP99MS float64 `json:"breakers_off_p99_ms"`
	Requests         int     `json:"requests_per_side"`
}

type report struct {
	Seed            int64           `json:"seed"`
	Shards          int             `json:"shards"`
	Phases          []phaseReport   `json:"phases"`
	KillOneShard    killShardReport `json:"kill_one_shard"`
	Availability    float64         `json:"availability"`     // (exact+partial)/total
	Exactness       float64         `json:"exactness"`        // exact/total
	Violations      int             `json:"violations"`       // invariant breaches, all phases
	GoroutinesStart int             `json:"goroutines_start"` // invariant 4 bookends
	GoroutinesEnd   int             `json:"goroutines_end"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qchaos: ")

	var (
		dataDir   = flag.String("data", "", "dataset directory (empty: synthesize a small one)")
		faultSeed = flag.Int64("fault-seed", 42, "seed for every fault schedule; logged for replay")
		out       = flag.String("out", "BENCH_chaos.json", "report output path")
		perPhase  = flag.Int("requests", 30, "requests driven per fault phase")
	)
	flag.Parse()
	log.Printf("fault-seed=%d (rerun with -fault-seed %d to replay)", *faultSeed, *faultSeed)

	baseGoroutines := runtime.NumGoroutine()

	dir := *dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "qchaos-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		cfg := sim.DefaultConfig()
		cfg.Steps = 3
		cfg.BackgroundPerStep = 4000
		cfg.BeamParticles = 60
		if _, err := sim.WriteDataset(tmp, cfg, sim.WriteOptions{Index: fastbit.IndexOptions{Bins: 64}}); err != nil {
			log.Fatal(err)
		}
		dir = tmp
		log.Printf("synthesized dataset in %s", dir)
	}

	// Shard fleet, every listener behind seeded fault injection.
	nodes := make([]*node, numShards)
	for i := range nodes {
		ex := shard.NewExecutor(1024)
		if err := ex.AddDataset("lwfa", dir); err != nil {
			log.Fatal(err)
		}
		nodes[i] = &node{idx: i, seed: *faultSeed + int64(i), dir: dir, ex: ex}
		if err := nodes[i].start(); err != nil {
			log.Fatal(err)
		}
	}
	groups := make([][]string, numShards)
	for i, n := range nodes {
		groups[i] = []string{n.addr}
	}

	// Baseline: single-process server over the same data, never faulted.
	// Its answers define "exact" for every scatter response.
	baseSrv := serve.New(serve.Config{CacheEntries: -1})
	if err := baseSrv.AddDataset("lwfa", dir); err != nil {
		log.Fatal(err)
	}
	baseTS := httptest.NewServer(baseSrv)

	// Frontend under test: breakers, retry budget, deadline budgets on.
	front, frontTS, frontClient := newFrontend(dir, groups, true, time.Second)

	h := &harness{
		baseTS:   baseTS,
		baseline: make(map[string]map[string]any),
	}

	var phases []phaseReport
	schedule := []struct {
		name   string
		inject func()
		heal   func()
	}{
		{"healthy", func() {}, func() {}},
		{"stall", func() { nodes[1].fl.SetStall(400 * time.Millisecond) }, func() { nodes[1].fl.SetStall(0) }},
		{"partition", func() { nodes[2].fl.SetPartitioned(true) }, func() { nodes[2].fl.SetPartitioned(false) }},
		{"corrupt", func() { nodes[0].fl.SetCorrupt(true) }, func() { nodes[0].fl.SetCorrupt(false) }},
		{"truncate", func() { nodes[1].fl.SetTruncate(true) }, func() { nodes[1].fl.SetTruncate(false) }},
		{"crash-restart", func() { nodes[2].kill() }, func() {
			if err := nodes[2].start(); err != nil {
				log.Fatalf("restart shard 2: %v", err)
			}
		}},
	}
	totalViolations := 0
	var totalReqs, totalExact, totalOK int
	for _, ph := range schedule {
		log.Printf("phase %s: injecting", ph.name)
		ph.inject()
		res := h.drive(frontTS, *perPhase)
		ph.heal()
		rep := h.classify(ph.name, res)
		rec, err := h.waitRecovered(frontTS, frontClient)
		if err != nil {
			log.Printf("phase %s: RECOVERY FAILED: %v", ph.name, err)
			rep.Violations++
		}
		rep.RecoveryMS = float64(rec) / float64(time.Millisecond)
		if ph.name == "healthy" && rep.Exact != rep.Requests {
			log.Printf("phase healthy: %d/%d exact — a fault-free fleet must answer exactly",
				rep.Exact, rep.Requests)
			rep.Violations++
		}
		log.Printf("phase %s: %d requests, %d exact, %d partial, %d errors, %d violations, p99 %.1fms, recovery %.0fms",
			ph.name, rep.Requests, rep.Exact, rep.Partial, rep.Errors, rep.Violations, rep.P99MS, rep.RecoveryMS)
		totalViolations += rep.Violations
		totalReqs += rep.Requests
		totalExact += rep.Exact
		totalOK += rep.Exact + rep.Partial
		phases = append(phases, rep)
	}

	// Breakers-on vs breakers-off under a blackholed shard: the breaker
	// should turn every post-trip request into a fast marked partial,
	// while the no-breaker frontend re-eats the attempt timeouts forever.
	killRep, kv := h.killOneShard(dir, groups, nodes[1], frontTS)
	totalViolations += kv

	// Teardown, then the goroutine bookend (invariant 4).
	frontTS.Close()
	front.Close()
	baseTS.Close()
	baseSrv.Close()
	for _, n := range nodes {
		n.close()
	}
	endGoroutines := waitGoroutinesSettle(baseGoroutines)
	if endGoroutines > baseGoroutines+10 {
		log.Printf("GOROUTINE LEAK: %d at start, %d after teardown", baseGoroutines, endGoroutines)
		totalViolations++
	}

	rep := report{
		Seed:            *faultSeed,
		Shards:          numShards,
		Phases:          phases,
		KillOneShard:    killRep,
		Availability:    ratio(totalOK, totalReqs),
		Exactness:       ratio(totalExact, totalReqs),
		Violations:      totalViolations,
		GoroutinesStart: baseGoroutines,
		GoroutinesEnd:   endGoroutines,
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s", *out)
	log.Printf("availability %.3f, exactness %.3f, breakers-on p99 %.1fms vs breakers-off %.1fms",
		rep.Availability, rep.Exactness, killRep.BreakersOnP99MS, killRep.BreakersOffP99MS)
	if totalViolations > 0 {
		log.Fatalf("%d invariant violations", totalViolations)
	}
	log.Printf("all invariants held")
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// newFrontend builds a scatter frontend over the fleet. The result cache
// is disabled so every request really exercises the fault path.
func newFrontend(dir string, groups [][]string, breakers bool, cooldown time.Duration) (*serve.Server, *httptest.Server, *shard.Client) {
	s := serve.New(serve.Config{CacheEntries: -1, ExecTimeout: execTimeout})
	if err := s.AddDataset("lwfa", dir); err != nil {
		log.Fatal(err)
	}
	cfg := cluster.DefaultPoolConfig()
	cfg.CallTimeout = 300 * time.Millisecond
	cfg.MaxRetries = 1
	cfg.BackoffBase = 2 * time.Millisecond
	cfg.BackoffMax = 10 * time.Millisecond
	cfg.ProbeInterval = 200 * time.Millisecond
	if breakers {
		cfg.Breaker = cluster.DefaultBreakerConfig()
		cfg.Breaker.Cooldown = cooldown
		cfg.RetryBudgetRatio = 0.1
		cfg.RetryBudgetBurst = 20
	}
	c, err := shard.DialShards(groups, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	s.SetShardClient(c) // closed by s.Close
	return s, httptest.NewServer(s), c
}

type harness struct {
	baseTS *httptest.Server

	mu       sync.Mutex
	baseline map[string]map[string]any // path -> normalized fault-free answer
	pathSeq  int                       // global offset so phases never reuse a path
}

// pathFor rotates across the query surface — count, 1D and 2D conditional
// histograms, wholesale and two-phase routing — with parameters varied by
// index so shard-side fragment caches cannot mask the fault path.
func pathFor(i int) string {
	step := i % 3
	thresh := url.QueryEscape(fmt.Sprintf("px > 0.000%d", 1+i%8))
	switch i % 4 {
	case 0:
		return fmt.Sprintf("/v1/query?dataset=lwfa&step=%d&q=%s", step, thresh)
	case 1:
		return fmt.Sprintf("/v1/hist1d?dataset=lwfa&step=%d&var=x&bins=%d&q=%s", step, 8+i%23, thresh)
	case 2:
		return fmt.Sprintf("/v1/hist1d?dataset=lwfa&step=%d&var=x&bins=%d", step, 8+i%23)
	default:
		return fmt.Sprintf("/v1/hist2d?dataset=lwfa&step=%d&x=x&y=px&xbins=%d&ybins=%d&q=%s",
			step, 6+i%11, 6+i%7, thresh)
	}
}

// volatile are per-request fields stripped before comparing a scatter
// answer against the baseline.
var volatile = []string{"elapsed_ms", "outcome", "mode", "trace_id", "degraded", "degraded_mode"}

func normalize(body map[string]any) map[string]any {
	for _, k := range volatile {
		delete(body, k)
	}
	return body
}

// fetch performs one request, decoding the body and the partial marking.
func fetch(ts *httptest.Server, client *http.Client, path string) result {
	start := time.Now()
	resp, err := client.Get(ts.URL + path)
	r := result{path: path}
	if err != nil {
		r.err = err
		r.dur = time.Since(start)
		return r
	}
	defer resp.Body.Close()
	r.code = resp.StatusCode
	r.partial = resp.Header.Get("X-Partial") != "" || resp.Header.Get("X-Degraded") != ""
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		r.err = err
	} else {
		r.body = m
	}
	r.dur = time.Since(start)
	return r
}

// baselineFor lazily computes the fault-free answer for a path.
func (h *harness) baselineFor(path string) (map[string]any, error) {
	h.mu.Lock()
	if b, ok := h.baseline[path]; ok {
		h.mu.Unlock()
		return b, nil
	}
	h.mu.Unlock()
	r := fetch(h.baseTS, http.DefaultClient, path)
	if r.err != nil || r.code != http.StatusOK {
		return nil, fmt.Errorf("baseline %s: code %d err %v", path, r.code, r.err)
	}
	b := normalize(r.body)
	h.mu.Lock()
	h.baseline[path] = b
	h.mu.Unlock()
	return b, nil
}

// drive issues n requests through the frontend with bounded concurrency,
// using globally fresh paths so nothing is answered from a warm fragment.
func (h *harness) drive(ts *httptest.Server, n int) []result {
	h.mu.Lock()
	offset := h.pathSeq
	h.pathSeq += n
	h.mu.Unlock()

	client := &http.Client{Timeout: execTimeout + deadlineSlack + 2*time.Second}
	out := make([]result, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, driveConc)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = fetch(ts, client, pathFor(offset+i))
		}(i)
	}
	wg.Wait()
	return out
}

// classify folds driven results into a phase report, checking invariants
// 1 (exact or marked) and 2 (bounded latency).
func (h *harness) classify(name string, results []result) phaseReport {
	rep := phaseReport{Name: name, Requests: len(results)}
	var durs []time.Duration
	for _, r := range results {
		durs = append(durs, r.dur)
		if r.dur > execTimeout+deadlineSlack {
			log.Printf("phase %s: %s outlived its deadline: %v", name, r.path, r.dur)
			rep.Violations++
		}
		switch {
		case r.err != nil || r.code >= 500:
			// A clean, explicit failure: hurts availability, not correctness.
			rep.Errors++
		case r.code != http.StatusOK:
			log.Printf("phase %s: %s: unexpected status %d", name, r.path, r.code)
			rep.Violations++
		case r.partial:
			rep.Partial++
		default:
			base, err := h.baselineFor(r.path)
			if err != nil {
				log.Printf("phase %s: %v", name, err)
				rep.Violations++
				continue
			}
			if !reflect.DeepEqual(normalize(r.body), base) {
				log.Printf("phase %s: %s: unmarked response differs from baseline", name, r.path)
				rep.Violations++
				continue
			}
			rep.Exact++
		}
	}
	rep.P50MS = pctMS(durs, 0.50)
	rep.P99MS = pctMS(durs, 0.99)
	return rep
}

// waitRecovered polls until a fresh request answers exactly and every
// breaker reads closed, returning how long the fleet took (invariant 3).
func (h *harness) waitRecovered(ts *httptest.Server, c *shard.Client) (time.Duration, error) {
	start := time.Now()
	client := &http.Client{Timeout: execTimeout + 2*time.Second}
	for {
		h.mu.Lock()
		path := pathFor(h.pathSeq)
		h.pathSeq++
		h.mu.Unlock()
		r := fetch(ts, client, path)
		exact := false
		if r.err == nil && r.code == http.StatusOK && !r.partial {
			if base, err := h.baselineFor(path); err == nil {
				exact = reflect.DeepEqual(normalize(r.body), base)
			}
		}
		if exact && breakersClosed(c) {
			return time.Since(start), nil
		}
		if time.Since(start) > recoveryLimit {
			return time.Since(start), fmt.Errorf("not recovered after %v (exact=%v breakersClosed=%v)",
				recoveryLimit, exact, breakersClosed(c))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func breakersClosed(c *shard.Client) bool {
	if c == nil {
		return true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, st := range c.Stats(ctx, time.Second) {
		for _, rs := range st.ReplicaState {
			if rs.Breaker != "closed" || !rs.Healthy {
				return false
			}
		}
	}
	return true
}

// killOneShard partitions one shard (a blackhole, the worst-case "kill":
// no RST, just silence) and measures steady-state p99 through a frontend
// with breakers against one without. The breaker frontend is given a long
// cooldown so half-open probes do not pollute the steady-state sample.
func (h *harness) killOneShard(dir string, groups [][]string, victim *node, mainTS *httptest.Server) (killShardReport, int) {
	const recorded = 60
	violations := 0

	onSrv, onTS, _ := newFrontend(dir, groups, true, time.Minute)
	offSrv, offTS, _ := newFrontend(dir, groups, false, 0)

	victim.fl.SetPartitioned(true)
	log.Printf("kill-one-shard: shard %d partitioned", victim.idx)

	// Warm the breakers past their trip point; not recorded.
	h.drive(onTS, 12)
	onRes := h.drive(onTS, recorded)
	offRes := h.drive(offTS, recorded)

	victim.fl.SetPartitioned(false)

	krep := killShardReport{
		BreakersOnP99MS:  pctMS(durations(onRes), 0.99),
		BreakersOffP99MS: pctMS(durations(offRes), 0.99),
		Requests:         recorded,
	}
	// Invariant 1 still holds under the dead shard: an unmarked 200 must
	// match the baseline exactly (wholesale-routed histograms whose home
	// shard survived legitimately stay complete); anything else must be
	// marked partial or fail cleanly.
	for _, r := range append(onRes, offRes...) {
		if r.err != nil || r.code != http.StatusOK || r.partial {
			continue
		}
		base, err := h.baselineFor(r.path)
		if err != nil || !reflect.DeepEqual(normalize(r.body), base) {
			log.Printf("kill-one-shard: %s: unmarked answer differs from baseline", r.path)
			violations++
		}
	}
	if krep.BreakersOnP99MS >= krep.BreakersOffP99MS {
		log.Printf("kill-one-shard: breakers-on p99 %.1fms not below breakers-off %.1fms",
			krep.BreakersOnP99MS, krep.BreakersOffP99MS)
		violations++
	}

	onTS.Close()
	onSrv.Close()
	offTS.Close()
	offSrv.Close()

	// The main frontend saw the same partition heal; wait for it too.
	if _, err := h.waitRecovered(mainTS, nil); err != nil {
		log.Printf("kill-one-shard: main frontend recovery: %v", err)
		violations++
	}
	return krep, violations
}

func durations(rs []result) []time.Duration {
	out := make([]time.Duration, len(rs))
	for i, r := range rs {
		out[i] = r.dur
	}
	return out
}

func pctMS(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return float64(s[idx]) / float64(time.Millisecond)
}

// waitGoroutinesSettle gives teardown a bounded window to drain before
// the leak check reads the final count.
func waitGoroutinesSettle(base int) int {
	deadline := time.Now().Add(10 * time.Second)
	n := runtime.NumGoroutine()
	for n > base+10 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
