// Command beamstats couples the query-driven selection workflow with
// traditional quantitative analysis (the paper's future-work direction):
// select a beam with a compound range query, trace it through time and
// report per-timestep beam quality — mean momentum, relative energy
// spread, RMS size and an emittance proxy — as a table or CSV.
//
// Usage:
//
//	beamstats -data data/lwfa -step 37 -query "px > 8.872e10"
//	beamstats -data data/lwfa -query "px > 5e10" -from 10 -csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fastquery"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("beamstats: ")

	var (
		data    = flag.String("data", "", "dataset directory (required)")
		step    = flag.Int("step", -1, "selection timestep (-1 = last)")
		q       = flag.String("query", "", "selection query (required)")
		from    = flag.Int("from", 0, "first timestep of the history")
		to      = flag.Int("to", -1, "last timestep of the history (-1 = last)")
		backend = flag.String("backend", "fastbit", "fastbit | custom")
		csv     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()
	if *data == "" || *q == "" {
		flag.Usage()
		os.Exit(2)
	}
	ex, err := core.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	if *backend == "custom" || *backend == "scan" {
		ex.SetBackend(fastquery.Scan)
	}
	selStep := *step
	if selStep < 0 {
		selStep = ex.Steps() - 1
	}
	end := *to
	if end < 0 {
		end = ex.Steps() - 1
	}

	sel, err := ex.Select(selStep, *q)
	if err != nil {
		log.Fatal(err)
	}
	if sel.Count() == 0 {
		log.Fatalf("selection %q at t=%d is empty", *q, selStep)
	}
	now, err := sel.BeamQuality()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection %q at t=%d: %d particles, mean px %.4e, spread %.2f%%, rms y %.3e, emittance %.3e\n",
		*q, selStep, now.N, now.MeanPx, 100*now.EnergySpread, now.RMSy, now.Emittance)

	history, err := sel.BeamHistory(*from, end)
	if err != nil {
		log.Fatal(err)
	}
	table := report.NewTable(
		fmt.Sprintf("Beam evolution, %d particles traced over t=[%d,%d]", sel.Count(), *from, end),
		"step", "n", "mean_px", "energy_spread", "rms_y", "emittance")
	for i, t := range history.Steps {
		qual := history.Quality[i]
		table.AddRow(
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%d", qual.N),
			fmt.Sprintf("%.6e", qual.MeanPx),
			fmt.Sprintf("%.6f", qual.EnergySpread),
			fmt.Sprintf("%.6e", qual.RMSy),
			fmt.Sprintf("%.6e", qual.Emittance),
		)
	}
	if *csv {
		err = table.FprintCSV(os.Stdout)
	} else {
		err = table.Fprint(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}
