// Open-loop load engine (fabbench/Lancet style): requests fire at
// scheduled times drawn from an arrival process, regardless of how fast
// the server answers. Two latencies are recorded per request:
//
//   - corrected — completion minus *scheduled* arrival. If the generator
//     (or a full outstanding window) delays the send, that stall counts
//     against the server, which is exactly the coordinated-omission
//     correction: a closed-loop generator would silently absorb it.
//   - service — completion minus actual send, the server-only view.
//
// The outstanding-request window (-max-outstanding) bounds this process's
// resources, not the offered load: an arrival that finds the window full
// is still *sent late* rather than dropped, so its corrected latency
// carries the full queueing penalty.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

// openLoopOptions configures one open-loop measurement phase.
type openLoopOptions struct {
	rate           float64 // offered arrivals per second
	duration       time.Duration
	arrival        string // poisson | uniform | fixed
	mix            *reqMix
	maxOutstanding int
	seed           int64
	quiet          bool // suppress the per-phase progress line
}

// kindStat aggregates one request kind's outcomes.
type kindStat struct {
	Sent     int `json:"sent"`
	OK       int `json:"ok"`
	Degraded int `json:"degraded"` // subset of OK answered via brownout
	Shed429  int `json:"shed_429"`
	Shed503  int `json:"shed_503"`
	Errors   int `json:"errors"`
}

// openResult is one open-loop phase's report.
type openResult struct {
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"` // OK responses per second
	ElapsedS    float64 `json:"elapsed_s"`
	Sent        int     `json:"sent"`
	OK          int     `json:"ok"`
	Degraded    int     `json:"degraded"`
	Shed429     int     `json:"shed_429"`
	Shed503     int     `json:"shed_503"`
	Errors      int     `json:"errors"`
	// Availability is the fraction of arrivals that got *an* HTTP answer
	// (success or a well-formed shed) rather than a transport failure.
	Availability float64 `json:"availability"`
	// Corrected percentiles measure completion minus scheduled arrival
	// (coordinated-omission corrected); service percentiles measure
	// completion minus actual send.
	CorrectedP50MS float64 `json:"corrected_p50_ms"`
	CorrectedP95MS float64 `json:"corrected_p95_ms"`
	CorrectedP99MS float64 `json:"corrected_p99_ms"`
	ServiceP50MS   float64 `json:"service_p50_ms"`
	ServiceP95MS   float64 `json:"service_p95_ms"`
	ServiceP99MS   float64 `json:"service_p99_ms"`

	ByKind map[string]*kindStat `json:"by_kind"`
}

// badFrac is the fraction of arrivals not answered 200 — shed, errored,
// or lost — the load the server failed to serve at this offered rate.
func (r *openResult) badFrac() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Sent-r.OK) / float64(r.Sent)
}

// recorder collects per-request outcomes under a mutex.
type recorder struct {
	mu        sync.Mutex
	byKind    map[string]*kindStat
	corrected []time.Duration
	service   []time.Duration
}

func newRecorder() *recorder { return &recorder{byKind: map[string]*kindStat{}} }

func (rec *recorder) stat(kind string) *kindStat {
	s := rec.byKind[kind]
	if s == nil {
		s = &kindStat{}
		rec.byKind[kind] = s
	}
	return s
}

func (rec *recorder) record(kind string, status int, degraded bool, corrected, service time.Duration, err error) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	s := rec.stat(kind)
	s.Sent++
	switch {
	case err != nil:
		s.Errors++
	case status == http.StatusTooManyRequests:
		s.Shed429++
	case status == http.StatusServiceUnavailable:
		s.Shed503++
	case status == http.StatusOK:
		s.OK++
		if degraded {
			s.Degraded++
		}
		rec.corrected = append(rec.corrected, corrected)
		rec.service = append(rec.service, service)
	default:
		s.Errors++
	}
}

// ingestFeeder produces successive sim timesteps for the ingest kind.
type ingestFeeder struct {
	mu   sync.Mutex
	run  *sim.Simulation
	next int
}

func newIngestFeeder(startStep int, opt ingestOptions) (*ingestFeeder, error) {
	cfg := sim.DefaultConfig()
	cfg.Steps = startStep + 1<<20 // effectively unbounded
	cfg.Dim = opt.dim
	cfg.BackgroundPerStep = opt.particles
	cfg.BeamParticles = opt.beam
	cfg.Seed = opt.seed
	run, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return &ingestFeeder{run: run, next: startStep}, nil
}

// body builds the next timestep's ingest payload.
func (f *ingestFeeder) body(dataset string) (serve.IngestBody, error) {
	f.mu.Lock()
	t := f.next
	f.next++
	f.mu.Unlock()
	ps, err := f.run.Step(t)
	if err != nil {
		return serve.IngestBody{}, err
	}
	body := serve.IngestBody{Dataset: dataset}
	cols := ps.Columns()
	for _, v := range sim.Variables {
		body.Columns = append(body.Columns, serve.IngestColumn{Name: v, Float: cols[v]})
	}
	body.Columns = append(body.Columns, serve.IngestColumn{Name: sim.IDVar, Int: ps.ID})
	return body, nil
}

// openLoopPaths builds the per-kind request templates once per run.
type openLoopPaths struct {
	probe  string
	drills []string
	sweep  string
}

func (lg *loadgen) buildPaths(xvar, yvar string, fine int) openLoopPaths {
	common := fmt.Sprintf("dataset=%s&step=%d", url.QueryEscape(lg.dataset), lg.step)
	if lg.backend != "" {
		common += "&backend=" + url.QueryEscape(lg.backend)
	}
	t1 := lg.yLo + 0.6*(lg.yHi-lg.yLo)
	q1 := fmt.Sprintf("%s > %g", yvar, t1)
	p := openLoopPaths{
		// One fixed key: after the first computation every probe is a cache
		// hit and exercises the admission bypass.
		probe: fmt.Sprintf("/v1/hist1d?%s&var=%s&bins=64&q=%s",
			common, url.QueryEscape(yvar), url.QueryEscape(q1)),
		sweep: fmt.Sprintf("/v1/sweep2d?%s&x=%s&y=%s&xbins=32&ybins=32&q=%s",
			common, url.QueryEscape(xvar), url.QueryEscape(yvar), url.QueryEscape(q1)),
	}
	// Drill-downs cycle through distinct compound cuts so most are real
	// backend work, with enough repetition for a warm cache to matter.
	xmid := (lg.xLo + lg.xHi) / 2
	for i := 0; i < 32; i++ {
		frac := 0.5 + 0.4*float64(i)/31
		t := lg.yLo + frac*(lg.yHi-lg.yLo)
		q := fmt.Sprintf("%s > %g && %s > %g", yvar, t, xvar, xmid)
		p.drills = append(p.drills, fmt.Sprintf("/v1/hist2d?%s&x=%s&y=%s&xbins=%d&ybins=%d&q=%s",
			common, url.QueryEscape(xvar), url.QueryEscape(yvar), fine, fine, url.QueryEscape(q)))
	}
	return p
}

// doOpen issues one open-loop request and reports status, degraded
// marker and completion time.
func (lg *loadgen) doOpen(kind string, paths openLoopPaths, feeder *ingestFeeder, i int) (status int, degraded bool, err error) {
	var resp *http.Response
	switch kind {
	case kindProbe:
		resp, err = lg.client.Get(lg.base + paths.probe)
	case kindDrill:
		resp, err = lg.client.Get(lg.base + paths.drills[i%len(paths.drills)])
	case kindSweep:
		resp, err = lg.client.Get(lg.base + paths.sweep)
	case kindIngest:
		var body serve.IngestBody
		if body, err = feeder.body(lg.dataset); err != nil {
			return 0, false, err
		}
		var buf []byte
		if buf, err = json.Marshal(body); err != nil {
			return 0, false, err
		}
		resp, err = lg.client.Post(lg.base+"/v1/ingest", "application/json", bytes.NewReader(buf))
	default:
		return 0, false, fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	_, cerr := io.Copy(io.Discard, resp.Body)
	if cerr != nil {
		return resp.StatusCode, false, cerr
	}
	return resp.StatusCode, resp.Header.Get("X-Degraded") != "", nil
}

// runOpenLoop drives one phase at the configured offered rate.
func (lg *loadgen) runOpenLoop(opt openLoopOptions, paths openLoopPaths, feeder *ingestFeeder) (*openResult, error) {
	if opt.rate <= 0 {
		return nil, fmt.Errorf("open loop needs -rate > 0")
	}
	if opt.mix.has(kindIngest) && feeder == nil {
		return nil, fmt.Errorf("mix includes ingest but the target dataset is not live")
	}
	mean := time.Duration(float64(time.Second) / opt.rate)
	rng := rand.New(rand.NewSource(opt.seed))
	rec := newRecorder()
	// The window bounds concurrency, not load: a full window delays the
	// send, and the delay lands in the corrected latency.
	window := make(chan struct{}, opt.maxOutstanding)
	var wg sync.WaitGroup

	start := time.Now()
	next := start
	seq := 0
	for {
		gap, err := arrivalGap(rng, opt.arrival, mean)
		if err != nil {
			return nil, err
		}
		next = next.Add(gap)
		if next.Sub(start) > opt.duration {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		kind := opt.mix.pick(rng)
		scheduled := next
		i := seq
		seq++
		window <- struct{}{} // blocks when the window is full: a late send
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-window }()
			sent := time.Now()
			status, degraded, err := lg.doOpen(kind, paths, feeder, i)
			done := time.Now()
			rec.record(kind, status, degraded, done.Sub(scheduled), done.Sub(sent), err)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rec.mu.Lock()
	defer rec.mu.Unlock()
	res := &openResult{
		OfferedQPS: opt.rate,
		ElapsedS:   elapsed.Seconds(),
		ByKind:     rec.byKind,
	}
	for _, s := range rec.byKind {
		res.Sent += s.Sent
		res.OK += s.OK
		res.Degraded += s.Degraded
		res.Shed429 += s.Shed429
		res.Shed503 += s.Shed503
		res.Errors += s.Errors
	}
	if res.ElapsedS > 0 {
		res.AchievedQPS = float64(res.OK) / res.ElapsedS
	}
	if res.Sent > 0 {
		res.Availability = float64(res.Sent-res.Errors) / float64(res.Sent)
	}
	res.CorrectedP50MS = percentileMS(rec.corrected, 50)
	res.CorrectedP95MS = percentileMS(rec.corrected, 95)
	res.CorrectedP99MS = percentileMS(rec.corrected, 99)
	res.ServiceP50MS = percentileMS(rec.service, 50)
	res.ServiceP95MS = percentileMS(rec.service, 95)
	res.ServiceP99MS = percentileMS(rec.service, 99)
	return res, nil
}

func (r *openResult) print(w io.Writer) {
	fmt.Fprintf(w, "open loop: offered %.1f qps  achieved %.1f qps  elapsed %.1fs\n",
		r.OfferedQPS, r.AchievedQPS, r.ElapsedS)
	fmt.Fprintf(w, "sent %d  ok %d (degraded %d)  shed 429 %d  shed 503 %d  errors %d  availability %.3f\n",
		r.Sent, r.OK, r.Degraded, r.Shed429, r.Shed503, r.Errors, r.Availability)
	fmt.Fprintf(w, "corrected ms  p50 %.2f  p95 %.2f  p99 %.2f   (service p50 %.2f  p95 %.2f  p99 %.2f)\n",
		r.CorrectedP50MS, r.CorrectedP95MS, r.CorrectedP99MS,
		r.ServiceP50MS, r.ServiceP95MS, r.ServiceP99MS)
	for kind, s := range r.ByKind {
		fmt.Fprintf(w, "  %-6s sent %-6d ok %-6d degraded %-5d 429 %-5d 503 %-5d err %d\n",
			kind, s.Sent, s.OK, s.Degraded, s.Shed429, s.Shed503, s.Errors)
	}
}
