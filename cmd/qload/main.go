// Command qload replays an interactive drill-down session against a
// running qserve instance and reports serving-side latency percentiles and
// cache effectiveness — the first serving-layer BENCH numbers.
//
// Each session is the paper's refinement loop over HTTP:
//
//  1. /v1/query     coarse momentum cut
//  2. /v1/hist2d    conditional histogram at coarse resolution
//  3. /v1/query     refined compound cut (momentum + position)
//  4. /v1/hist2d    conditional histogram at fine resolution
//
// Sessions alternate the operand order of the compound cut, so a healthy
// plan cache (canonicalized keys) turns half the refined queries into
// hits. Run with concurrency above the server's -concurrency limit to see
// admission control shed load with 429s. With -cancel-frac > 0 a share of
// requests is abandoned mid-flight — the impatient-analyst pattern — and
// the report includes the server's 499 and abandoned-waiter deltas, which
// confirm cancellation actually reached the backend.
//
// Usage:
//
//	qserve -data /tmp/lwfa -addr :8080 &
//	qload -url http://127.0.0.1:8080 -sessions 100 -concurrency 16
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qload: ")

	var (
		base        = flag.String("url", "", "qserve base URL (required)")
		dataset     = flag.String("dataset", "", "dataset name (default: the first served)")
		step        = flag.Int("step", -1, "timestep (-1 = last)")
		sessions    = flag.Int("sessions", 50, "drill-down sessions to replay")
		concurrency = flag.Int("concurrency", 8, "concurrent sessions")
		backend     = flag.String("backend", "", "backend parameter (fastbit | scan; empty = server default)")
		xvar        = flag.String("x", "x", "histogram X variable")
		yvar        = flag.String("y", "px", "histogram Y variable / cut variable")
		coarse      = flag.Int("coarse", 32, "coarse hist2d bins per axis")
		fine        = flag.Int("fine", 256, "fine hist2d bins per axis")
		cancelFrac  = flag.Float64("cancel-frac", 0, "fraction of requests abandoned mid-flight (0..1), exercising server-side cancellation")
		traceEvery  = flag.Int("trace-sample", 8, "request ?debug=trace on every Nth session for the per-stage breakdown (0 = off)")
		out         = flag.String("out", "", "benchmark JSON output path (default BENCH_serve.json, or BENCH_ingest.json with -ingest-steps; \"-\" = skip)")

		// Read-while-ingest mode: replay the same sessions twice — once
		// quiet, once while streaming new timesteps into POST /v1/ingest —
		// and report the latency delta plus the index-upgrade lag.
		ingSteps     = flag.Int("ingest-steps", 0, "timesteps to ingest during the measured phase (0 = ingest mode off)")
		ingInterval  = flag.Duration("ingest-interval", 200*time.Millisecond, "pause between ingested steps")
		ingParticles = flag.Int("ingest-particles", 50000, "sim background particles per step (must match the served run)")
		ingBeam      = flag.Int("ingest-beam", 600, "sim particles per beam (must match the served run)")
		ingDim       = flag.Int("ingest-dim", 2, "sim dimensionality (must match the served run)")
		ingSeed      = flag.Uint64("ingest-seed", 0x5eed, "sim seed (must match the served run)")

		// Open-loop mode (-rate > 0) and the found-capacity sweep
		// (-capacity): arrivals fire on a schedule independent of response
		// times, and percentiles are coordinated-omission corrected.
		rate        = flag.Float64("rate", 0, "open-loop offered arrivals/sec (0 = closed-loop session replay)")
		duration    = flag.Duration("duration", 30*time.Second, "open-loop measurement duration")
		arrival     = flag.String("arrival", "poisson", "inter-arrival process: poisson | uniform | fixed")
		mixFlag     = flag.String("mix", "probe=0.3,drill=0.6,sweep=0.1", "open-loop request mix, kind=weight,... (probe | drill | sweep | ingest)")
		seed        = flag.Int64("seed", 1, "open-loop RNG seed")
		maxOut      = flag.Int("max-outstanding", 256, "max in-flight open-loop requests; a full window delays sends and the delay lands in corrected latency")
		slo         = flag.Duration("slo", 250*time.Millisecond, "corrected-p99 target defining sustainable capacity")
		capacity    = flag.Bool("capacity", false, "run the found-capacity sweep and write BENCH_capacity.json")
		capStart    = flag.Float64("cap-start", 5, "capacity sweep starting rate (qps)")
		capGrowth   = flag.Float64("cap-growth", 1.5, "capacity sweep geometric ramp factor")
		capPhase    = flag.Duration("cap-phase", 10*time.Second, "capacity sweep per-rate phase duration")
		capMax      = flag.Float64("cap-max", 2000, "capacity sweep rate ceiling (qps)")
		capShed     = flag.Float64("cap-shed-frac", 0.02, "tolerated non-200 fraction while a rate counts as sustained")
		baselineURL = flag.String("baseline-url", "", "second qserve (conventionally a fixed gate) to sweep for comparison")
		capEnforce  = flag.Bool("cap-enforce", false, "exit non-zero when adaptive found capacity < baseline found capacity")

		// Shard comparison (-shard-bench): replay the drill mix against a
		// sharded frontend (-url) and a single-process baseline
		// (-baseline-url) over the same dataset, asserting identical
		// responses; writes BENCH_shard.json with per-target percentiles
		// and the frontend's fan-out stats.
		shardBench = flag.Bool("shard-bench", false, "compare a sharded frontend against -baseline-url for identity and latency")

		// Session comparison (-session-bench): replay brush → refine → track
		// chains through /v1/session twice — once with incremental refine=and
		// deltas (server-side bitmap reuse), once re-sending the folded
		// conjunction from scratch — and write BENCH_session.json with both
		// arms' refinement percentiles.
		sessionBench   = flag.Bool("session-bench", false, "benchmark incremental session refinement against from-scratch evaluation")
		sessionRefines = flag.Int("session-refines", 5, "refinement steps per session in -session-bench")
	)
	flag.Parse()
	if *base == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *cancelFrac < 0 || *cancelFrac > 1 {
		log.Fatal("-cancel-frac must be in [0, 1]")
	}
	lg := &loadgen{
		base:       *base,
		backend:    *backend,
		cancelFrac: *cancelFrac,
		traceEvery: *traceEvery,
		// The latency distribution uses the same obs histogram machinery
		// the server exports, so BENCH buckets line up with /metrics ones.
		latHist: obs.NewRegistry().Histogram("qload_request_seconds",
			"Client-observed request latency.", nil),
		stages: map[string]*stageAgg{},
		worst:  newWorstTracker(3),
		client: &http.Client{Timeout: 30 * time.Second},
	}
	if *capacity || *rate > 0 {
		// Open-loop transports must not serialize on a handful of pooled
		// connections, or pool exhaustion would masquerade as server latency.
		lg.client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        *maxOut + 16,
				MaxIdleConnsPerHost: *maxOut + 16,
			},
		}
	}
	if err := lg.setup(*dataset, *step, *xvar, *yvar); err != nil {
		log.Fatal(err)
	}
	var report interface {
		print(io.Writer)
	}
	var exitErr string // deferred fatal: the report is written first
	switch {
	case *capacity, *rate > 0:
		mix, err := parseMix(*mixFlag)
		if err != nil {
			log.Fatal(err)
		}
		open := openLoopOptions{
			rate:           *rate,
			duration:       *duration,
			arrival:        *arrival,
			mix:            mix,
			maxOutstanding: *maxOut,
			seed:           *seed,
		}
		ingOpt := ingestOptions{particles: *ingParticles, beam: *ingBeam, dim: *ingDim, seed: *ingSeed}
		paths, feeder, err := lg.openLoopSetup(mix, ingOpt, *xvar, *yvar, *fine)
		if err != nil {
			log.Fatal(err)
		}
		if *capacity {
			copt := capacityOptions{
				start:    *capStart,
				growth:   *capGrowth,
				phase:    *capPhase,
				max:      *capMax,
				shedFrac: *capShed,
				slo:      *slo,
				open:     open,
			}
			rep := &capacityReport{
				SLOMS:    float64(*slo) / float64(time.Millisecond),
				ShedFrac: *capShed,
				Arrival:  *arrival,
				Mix:      mix.String(),
				PhaseS:   capPhase.Seconds(),
			}
			if rep.Adaptive, err = lg.findCapacity(copt, paths, feeder); err != nil {
				log.Fatal(err)
			}
			if *baselineURL != "" {
				blg := &loadgen{base: *baselineURL, backend: *backend, client: lg.client,
					latHist: lg.latHist, stages: map[string]*stageAgg{}}
				if err := blg.setup(*dataset, *step, *xvar, *yvar); err != nil {
					log.Fatal(err)
				}
				bpaths, bfeeder, err := blg.openLoopSetup(mix, ingOpt, *xvar, *yvar, *fine)
				if err != nil {
					log.Fatal(err)
				}
				if rep.Baseline, err = blg.findCapacity(copt, bpaths, bfeeder); err != nil {
					log.Fatal(err)
				}
				if rep.Baseline.FoundQPS > 0 {
					rep.Speedup = rep.Adaptive.FoundQPS / rep.Baseline.FoundQPS
				}
				if *capEnforce && rep.Adaptive.FoundQPS < rep.Baseline.FoundQPS {
					exitErr = fmt.Sprintf("capacity regression: adaptive %.1f qps < baseline %.1f qps",
						rep.Adaptive.FoundQPS, rep.Baseline.FoundQPS)
				}
			}
			report = rep
			if *out == "" {
				*out = "BENCH_capacity.json"
			}
		} else {
			res, err := lg.runOpenLoop(open, paths, feeder)
			if err != nil {
				log.Fatal(err)
			}
			report = res
			if *out == "" {
				*out = "BENCH_openloop.json"
			}
		}
	case *shardBench:
		if *baselineURL == "" {
			log.Fatal("-shard-bench requires -baseline-url")
		}
		blg := &loadgen{base: *baselineURL, backend: *backend, client: lg.client,
			latHist: lg.latHist, stages: map[string]*stageAgg{}}
		if err := blg.setup(*dataset, *step, *xvar, *yvar); err != nil {
			log.Fatal(err)
		}
		rep, err := lg.runShardBench(blg, *sessions, *concurrency, *xvar, *yvar, *coarse, *fine)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Mismatches > 0 {
			exitErr = fmt.Sprintf("%d response mismatches between frontend and baseline", rep.Mismatches)
		}
		report = rep
		if *out == "" {
			*out = "BENCH_shard.json"
		}
	case *sessionBench:
		rep, err := lg.runSessionBench(*sessions, *concurrency, *sessionRefines, *xvar, *yvar)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Refine.P95MS >= rep.Scratch.P95MS {
			log.Printf("warning: refine p95 %.3fms not below scratch p95 %.3fms",
				rep.Refine.P95MS, rep.Scratch.P95MS)
		}
		report = rep
		if *out == "" {
			*out = "BENCH_session.json"
		}
	case *ingSteps > 0:
		ires, err := lg.runIngestBench(ingestOptions{
			steps:     *ingSteps,
			interval:  *ingInterval,
			particles: *ingParticles,
			beam:      *ingBeam,
			dim:       *ingDim,
			seed:      *ingSeed,
		}, *sessions, *concurrency, *xvar, *yvar, *coarse, *fine)
		if err != nil {
			log.Fatal(err)
		}
		report = ires
		if *out == "" {
			*out = "BENCH_ingest.json"
		}
	default:
		res, err := lg.run(*sessions, *concurrency, *xvar, *yvar, *coarse, *fine)
		if err != nil {
			log.Fatal(err)
		}
		report = res
		if *out == "" {
			*out = "BENCH_serve.json"
		}
	}
	report.print(os.Stdout)
	if *out != "-" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if exitErr != "" {
		log.Fatal(exitErr)
	}
}

// openLoopSetup builds the request templates and, when the mix streams
// appends, the ingest feeder (requiring a live target dataset).
func (lg *loadgen) openLoopSetup(mix *reqMix, ingOpt ingestOptions, xvar, yvar string, fine int) (openLoopPaths, *ingestFeeder, error) {
	paths := lg.buildPaths(xvar, yvar, fine)
	if !mix.has(kindIngest) {
		return paths, nil, nil
	}
	sb, err := lg.stepsDetail()
	if err != nil {
		return paths, nil, err
	}
	if !sb.Live {
		return paths, nil, fmt.Errorf("mix includes ingest but dataset %q is not live — start qserve with -live", lg.dataset)
	}
	feeder, err := newIngestFeeder(sb.Steps, ingOpt)
	return paths, feeder, err
}

type loadgen struct {
	base       string
	backend    string
	cancelFrac float64
	traceEvery int
	latHist    *obs.Histogram
	client     *http.Client

	dataset  string
	step     int
	yLo, yHi float64
	xLo, xHi float64

	reqSeq atomic.Uint64 // request counter driving the cancel stride
	worst  *worstTracker // slowest requests per kind, nil when not reported

	stageMu sync.Mutex
	stages  map[string]*stageAgg // per-span-name totals from sampled traces
}

// stageAgg accumulates one query stage's time across sampled traces.
type stageAgg struct {
	count   uint64
	totalMS float64
}

// recordTrace folds one sampled span tree into the per-stage breakdown.
// The root span (the endpoint) is skipped: request totals are already the
// latency distribution's job.
func (lg *loadgen) recordTrace(root *obs.SpanData) {
	if root == nil {
		return
	}
	lg.stageMu.Lock()
	defer lg.stageMu.Unlock()
	root.Walk(func(sd *obs.SpanData) {
		if sd == root {
			return
		}
		a := lg.stages[sd.Name]
		if a == nil {
			a = &stageAgg{}
			lg.stages[sd.Name] = a
		}
		a.count++
		a.totalMS += sd.DurationMS
	})
}

// shouldCancel deterministically marks a cancelFrac share of requests for
// mid-flight abandonment: request n is canceled when the running total
// floor(n*frac) advances. A stride, not a coin flip, so runs are
// reproducible and the share is exact.
func (lg *loadgen) shouldCancel() bool {
	if lg.cancelFrac <= 0 {
		return false
	}
	n := lg.reqSeq.Add(1) - 1
	return uint64(float64(n+1)*lg.cancelFrac) > uint64(float64(n)*lg.cancelFrac)
}

// getCanceled issues the request and abandons it almost immediately,
// simulating a user who navigated away mid-histogram. Returns true if the
// request was actually canceled (a fast cache hit may win the race).
func (lg *loadgen) getCanceled(path string) (bool, error) {
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, lg.base+path, nil)
	if err != nil {
		return false, err
	}
	resp, err := lg.client.Do(req)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return true, nil
		}
		return false, err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	if errors.Is(err, context.Canceled) {
		return true, nil
	}
	return false, nil // completed before the cancel fired
}

// getJSON fetches path (already query-encoded) and decodes into out.
func (lg *loadgen) getJSON(path string, out any) (int, error) {
	code, _, err := lg.getJSONTrace(path, out)
	return code, err
}

// getJSONTrace is getJSON additionally returning the X-Trace-Id the
// server stamped on the response, so the worst-latency report can name
// concrete requests to pull out of the server's slow log or spans.
func (lg *loadgen) getJSONTrace(path string, out any) (int, string, error) {
	resp, err := lg.client.Get(lg.base + path)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, traceID, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, traceID, fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, traceID, fmt.Errorf("GET %s: decode: %w", path, err)
		}
	}
	return resp.StatusCode, traceID, nil
}

// WorstRequest identifies one of the slowest requests of a kind: the
// latency this client observed and the trace ID the server assigned, the
// handle that joins BENCH numbers to /v1/debug/slow entries and explain
// profiles on the serving side.
type WorstRequest struct {
	TraceID    string  `json:"trace_id"`
	DurationMS float64 `json:"duration_ms"`
	Path       string  `json:"path,omitempty"`
}

// worstTracker keeps the top-N worst-latency requests per request kind.
// Nil-safe: loadgens that don't report worst requests skip tracking.
type worstTracker struct {
	mu sync.Mutex
	n  int
	m  map[string][]WorstRequest
}

func newWorstTracker(n int) *worstTracker {
	return &worstTracker{n: n, m: map[string][]WorstRequest{}}
}

func (wt *worstTracker) add(kind, traceID, path string, d time.Duration) {
	if wt == nil || traceID == "" {
		return
	}
	e := WorstRequest{TraceID: traceID, Path: path,
		DurationMS: float64(d) / float64(time.Millisecond)}
	wt.mu.Lock()
	defer wt.mu.Unlock()
	l := append(wt.m[kind], e)
	sort.Slice(l, func(i, j int) bool { return l[i].DurationMS > l[j].DurationMS })
	if len(l) > wt.n {
		l = l[:wt.n]
	}
	wt.m[kind] = l
}

func (wt *worstTracker) snapshot() map[string][]WorstRequest {
	if wt == nil {
		return nil
	}
	wt.mu.Lock()
	defer wt.mu.Unlock()
	if len(wt.m) == 0 {
		return nil
	}
	out := make(map[string][]WorstRequest, len(wt.m))
	for k, l := range wt.m {
		out[k] = append([]WorstRequest(nil), l...)
	}
	return out
}

// setup discovers the dataset, step and variable ranges the session
// template needs.
func (lg *loadgen) setup(dataset string, step int, xvar, yvar string) error {
	var dss []serve.DatasetInfo
	if _, err := lg.getJSON("/v1/datasets", &dss); err != nil {
		return err
	}
	if len(dss) == 0 {
		return fmt.Errorf("server has no datasets")
	}
	lg.dataset = dataset
	var info *serve.DatasetInfo
	for i := range dss {
		if dataset == "" || dss[i].Name == dataset {
			info = &dss[i]
			break
		}
	}
	if info == nil {
		return fmt.Errorf("dataset %q not served", dataset)
	}
	lg.dataset = info.Name
	lg.step = step
	if lg.step < 0 {
		lg.step = info.Steps - 1
	}
	var vars serve.VarsBody
	path := fmt.Sprintf("/v1/vars?dataset=%s&step=%d", url.QueryEscape(lg.dataset), lg.step)
	if _, err := lg.getJSON(path, &vars); err != nil {
		return err
	}
	seen := 0
	for _, v := range vars.Vars {
		switch v.Name {
		case xvar:
			lg.xLo, lg.xHi = v.Min, v.Max
			seen++
		case yvar:
			lg.yLo, lg.yHi = v.Min, v.Max
			seen++
		}
	}
	if seen != 2 {
		return fmt.Errorf("dataset %q lacks variables %q/%q", lg.dataset, xvar, yvar)
	}
	return nil
}

func (lg *loadgen) stats() (serve.StatsBody, error) {
	var st serve.StatsBody
	_, err := lg.getJSON("/v1/stats", &st)
	return st, err
}

// result is the BENCH_serve.json shape.
type result struct {
	Sessions    int     `json:"sessions"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	ElapsedS    float64 `json:"elapsed_s"`
	RPS         float64 `json:"rps"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	MeanMS      float64 `json:"mean_ms"`
	// LatencyHistogram is the full client-observed latency distribution
	// in cumulative Prometheus-style buckets.
	LatencyHistogram []latBucket `json:"latency_histogram,omitempty"`
	// Stages is the per-query-stage breakdown from ?debug=trace sampling:
	// span name -> aggregate across sampled requests.
	Stages map[string]stageStat `json:"stages,omitempty"`
	// WorstByKind lists, per request kind, the slowest requests this run
	// observed with their server-assigned trace IDs — the handles to look
	// up in /v1/debug/slow or a flight-recorder capture.
	WorstByKind map[string][]WorstRequest `json:"worst_by_kind,omitempty"`
	Shed429     int                       `json:"shed_429"`
	Shed503     int                       `json:"shed_503"`
	Errors      int                       `json:"errors"`
	HitRate     float64                   `json:"cache_hit_rate"`
	Backend     uint64                    `json:"backend_calls"`
	// Cancellation exercise (-cancel-frac): requests this client abandoned
	// mid-flight, and the server's 499/abandoned-waiter deltas confirming
	// the backend observed the disconnects.
	CancelFrac     float64 `json:"cancel_frac,omitempty"`
	Canceled       int     `json:"canceled_client,omitempty"`
	ServerCanceled uint64  `json:"server_canceled_499,omitempty"`
	Abandoned      uint64  `json:"cache_abandoned,omitempty"`
}

// latBucket is one cumulative latency bucket (upper bound in ms).
type latBucket struct {
	LEMS  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// stageStat summarizes one traced query stage.
type stageStat struct {
	Count   uint64  `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

func (r *result) print(w io.Writer) {
	fmt.Fprintf(w, "sessions %d  requests %d  concurrency %d  elapsed %.2fs  %.1f req/s\n",
		r.Sessions, r.Requests, r.Concurrency, r.ElapsedS, r.RPS)
	fmt.Fprintf(w, "latency ms  p50 %.2f  p95 %.2f  p99 %.2f  max %.2f  mean %.2f\n",
		r.P50MS, r.P95MS, r.P99MS, r.MaxMS, r.MeanMS)
	fmt.Fprintf(w, "cache hit rate %.1f%%  backend calls %d  shed 429 %d  shed 503 %d  errors %d\n",
		100*r.HitRate, r.Backend, r.Shed429, r.Shed503, r.Errors)
	if r.CancelFrac > 0 {
		fmt.Fprintf(w, "canceled client-side %d (frac %.2f)  server 499s %d  cache waiters abandoned %d\n",
			r.Canceled, r.CancelFrac, r.ServerCanceled, r.Abandoned)
	}
	if len(r.Stages) > 0 {
		names := make([]string, 0, len(r.Stages))
		for name := range r.Stages {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			return r.Stages[names[i]].TotalMS > r.Stages[names[j]].TotalMS
		})
		fmt.Fprintf(w, "stage breakdown (sampled traces):\n")
		for _, name := range names {
			s := r.Stages[name]
			fmt.Fprintf(w, "  %-20s n=%-5d mean %.3fms  total %.1fms\n",
				name, s.Count, s.MeanMS, s.TotalMS)
		}
	}
	if len(r.WorstByKind) > 0 {
		kinds := make([]string, 0, len(r.WorstByKind))
		for kind := range r.WorstByKind {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "worst requests by kind (trace IDs):\n")
		for _, kind := range kinds {
			for _, wr := range r.WorstByKind[kind] {
				fmt.Fprintf(w, "  %-14s %8.2fms  %s\n", kind, wr.DurationMS, wr.TraceID)
			}
		}
	}
}

// sessionOutcome carries one session's request latencies and shed counts.
type sessionOutcome struct {
	latencies []time.Duration
	shed429   int
	shed503   int
	errs      int
	canceled  int
}

func (lg *loadgen) run(sessions, concurrency int, xvar, yvar string, coarse, fine int) (*result, error) {
	before, err := lg.stats()
	if err != nil {
		return nil, err
	}

	// Thresholds of the paper's refinement: a momentum cut, then a
	// compound momentum+position cut.
	t1 := lg.yLo + 0.6*(lg.yHi-lg.yLo)
	t2 := lg.yLo + 0.8*(lg.yHi-lg.yLo)
	xmid := (lg.xLo + lg.xHi) / 2
	q1 := fmt.Sprintf("%s > %g", yvar, t1)
	// Two equivalent spellings of the refined query; the plan cache should
	// treat them as one.
	q2a := fmt.Sprintf("%s > %g && %s > %g", yvar, t2, xvar, xmid)
	q2b := fmt.Sprintf("%s > %g && %s > %g", xvar, xmid, yvar, t2)

	jobs := make(chan int)
	outcomes := make(chan sessionOutcome, sessions)
	for w := 0; w < concurrency; w++ {
		go func() {
			for i := range jobs {
				outcomes <- lg.session(i, q1, q2a, q2b, xvar, yvar, coarse, fine)
			}
		}()
	}
	start := time.Now()
	go func() {
		for i := 0; i < sessions; i++ {
			jobs <- i
		}
		close(jobs)
	}()

	var all []time.Duration
	res := &result{Sessions: sessions, Concurrency: concurrency, CancelFrac: lg.cancelFrac}
	for i := 0; i < sessions; i++ {
		o := <-outcomes
		all = append(all, o.latencies...)
		res.Shed429 += o.shed429
		res.Shed503 += o.shed503
		res.Errors += o.errs
		res.Canceled += o.canceled
	}
	elapsed := time.Since(start)

	after, err := lg.stats()
	if err != nil {
		return nil, err
	}
	res.ServerCanceled = after.Canceled - before.Canceled
	res.Abandoned = after.Cache.Abandoned - before.Cache.Abandoned
	res.Requests = len(all) + res.Shed429 + res.Shed503 + res.Errors + res.Canceled
	res.ElapsedS = elapsed.Seconds()
	if res.ElapsedS > 0 {
		res.RPS = float64(res.Requests) / res.ElapsedS
	}
	res.MeanMS = meanMS(all)
	res.P50MS = percentileMS(all, 50)
	res.P95MS = percentileMS(all, 95)
	res.P99MS = percentileMS(all, 99)
	for _, d := range all {
		if ms := float64(d) / float64(time.Millisecond); ms > res.MaxMS {
			res.MaxMS = ms
		}
		lg.latHist.Observe(d.Seconds())
	}
	upper, cum := lg.latHist.Buckets()
	for i := range upper {
		res.LatencyHistogram = append(res.LatencyHistogram,
			latBucket{LEMS: upper[i] * 1000, Count: cum[i]})
	}
	lg.stageMu.Lock()
	if len(lg.stages) > 0 {
		res.Stages = map[string]stageStat{}
		for name, a := range lg.stages {
			res.Stages[name] = stageStat{
				Count:   a.count,
				TotalMS: a.totalMS,
				MeanMS:  a.totalMS / float64(a.count),
			}
		}
	}
	lg.stageMu.Unlock()
	res.WorstByKind = lg.worst.snapshot()
	hits := after.Cache.Hits - before.Cache.Hits
	lookups := hits + (after.Cache.Misses - before.Cache.Misses) + (after.Cache.Coalesced - before.Cache.Coalesced)
	if lookups > 0 {
		res.HitRate = float64(hits) / float64(lookups)
	}
	res.Backend = after.BackendCalls - before.BackendCalls
	return res, nil
}

// session replays one drill-down; i alternates the refined-query spelling.
func (lg *loadgen) session(i int, q1, q2a, q2b, xvar, yvar string, coarse, fine int) sessionOutcome {
	q2 := q2a
	if i%2 == 1 {
		q2 = q2b
	}
	common := fmt.Sprintf("dataset=%s&step=%d", url.QueryEscape(lg.dataset), lg.step)
	if lg.backend != "" {
		common += "&backend=" + url.QueryEscape(lg.backend)
	}
	paths := []string{
		fmt.Sprintf("/v1/query?%s&q=%s", common, url.QueryEscape(q1)),
		fmt.Sprintf("/v1/hist2d?%s&x=%s&y=%s&xbins=%d&ybins=%d&q=%s",
			common, url.QueryEscape(xvar), url.QueryEscape(yvar), coarse, coarse, url.QueryEscape(q1)),
		fmt.Sprintf("/v1/query?%s&q=%s", common, url.QueryEscape(q2)),
		fmt.Sprintf("/v1/hist2d?%s&x=%s&y=%s&xbins=%d&ybins=%d&q=%s",
			common, url.QueryEscape(xvar), url.QueryEscape(yvar), fine, fine, url.QueryEscape(q2)),
	}
	kinds := []string{"query-coarse", "hist2d-coarse", "query-fine", "hist2d-fine"}
	// Sampled sessions ask the server to echo each request's span tree,
	// feeding the per-stage breakdown.
	sample := lg.traceEvery > 0 && i%lg.traceEvery == 0
	var o sessionOutcome
	for pi, p := range paths {
		if lg.shouldCancel() {
			canceled, err := lg.getCanceled(p)
			switch {
			case err != nil:
				o.errs++
			case canceled:
				o.canceled++
			}
			// A request that completed before its cancel fired contributes
			// nothing: its latency is contaminated by the cancel race.
			continue
		}
		var out any
		var tb struct {
			Trace *obs.SpanData `json:"trace"`
		}
		if sample {
			p += "&debug=trace"
			out = &tb
		}
		start := time.Now()
		code, traceID, err := lg.getJSONTrace(p, out)
		lat := time.Since(start)
		lg.recordTrace(tb.Trace)
		switch {
		case code == http.StatusTooManyRequests:
			o.shed429++
		case code == http.StatusServiceUnavailable:
			o.shed503++
		case err != nil:
			o.errs++
		default:
			o.latencies = append(o.latencies, lat)
			lg.worst.add(kinds[pi], traceID, p, lat)
		}
	}
	return o
}

func meanMS(ds []time.Duration) float64 {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return float64(sum) / float64(len(ds)) / float64(time.Millisecond)
}

func percentileMS(ds []time.Duration, p int) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted)-1)*p + 50
	return float64(sorted[idx/100]) / float64(time.Millisecond)
}
