// Session-bench mode (-session-bench): replay the paper's brush → refine →
// track loop against the analysis-session API and compare the two ways the
// server can answer a refinement. The refine arm sends incremental deltas
// (refine=and) so the server combines the stored WAH bitmap with the delta's
// bitmap; the scratch arm re-evaluates the fully folded conjunction on every
// step, which is what a session-less client would be forced to do. Both arms
// run the same chain shape; thresholds carry a per-(session, arm) epsilon so
// neither arm can be served out of a fragment cache warmed by the other.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/serve"
	"repro/internal/session"
)

// sessionBenchReport is the BENCH_session.json shape.
type sessionBenchReport struct {
	Sessions int `json:"sessions"`
	Refines  int `json:"refines_per_session"`
	// Refine is the incremental arm: stored-bitmap ∧ delta-bitmap.
	Refine armSummary `json:"refine"`
	// Scratch is the baseline arm: full folded-conjunction evaluation.
	Scratch armSummary `json:"scratch"`
	// SpeedupP95 is scratch p95 / refine p95; the session layer earns its
	// keep only when this exceeds 1.
	SpeedupP95 float64 `json:"speedup_p95"`
	TrackP50MS float64 `json:"track_p50_ms"`
	TrackP95MS float64 `json:"track_p95_ms"`
	// Server-side confirmation that the refine arm actually reused bitmaps
	// and the scratch arm actually re-evaluated: /v1/stats session counter
	// deltas across the run.
	ReuseDelta   uint64 `json:"refine_reuse_delta"`
	ScratchDelta uint64 `json:"refine_scratch_delta"`
	Errors       int    `json:"errors"`
}

// armSummary is one arm's latency distribution over all refinement requests.
type armSummary struct {
	Requests int     `json:"requests"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	MeanMS   float64 `json:"mean_ms"`
	MaxMS    float64 `json:"max_ms"`
}

func (r *sessionBenchReport) print(w io.Writer) {
	fmt.Fprintf(w, "session-bench: sessions %d  refines/session %d  errors %d\n",
		r.Sessions, r.Refines, r.Errors)
	for _, a := range []struct {
		name string
		s    armSummary
	}{{"refine", r.Refine}, {"scratch", r.Scratch}} {
		fmt.Fprintf(w, "%-8s n=%-5d p50 %.3fms  p95 %.3fms  mean %.3fms  max %.3fms\n",
			a.name, a.s.Requests, a.s.P50MS, a.s.P95MS, a.s.MeanMS, a.s.MaxMS)
	}
	fmt.Fprintf(w, "speedup p95 %.2fx  track p50 %.3fms p95 %.3fms  server reuse +%d scratch +%d\n",
		r.SpeedupP95, r.TrackP50MS, r.TrackP95MS, r.ReuseDelta, r.ScratchDelta)
}

// postJSON POSTs path (no body; session endpoints take query parameters)
// and decodes the response into out.
func (lg *loadgen) postJSON(path string, out any) error {
	resp, err := lg.client.Post(lg.base+path, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d", path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sessionChain builds one session's predicate chain: the brush plus the
// refinement deltas. jit perturbs every threshold so distinct (session, arm)
// pairs canonicalize to distinct plans — otherwise the executor's fragment
// cache would answer one arm with work the other arm paid for.
func (lg *loadgen) sessionChain(refines int, jit float64, xvar, yvar string) (brush string, deltas []string) {
	dx, dy := lg.xHi-lg.xLo, lg.yHi-lg.yLo
	brush = fmt.Sprintf("%s > %g", yvar, lg.yLo+(0.55+jit)*dy)
	for k := 1; k <= refines; k++ {
		f := 0.04*float64(k) + jit
		if k%2 == 1 {
			deltas = append(deltas, fmt.Sprintf("%s > %g", xvar, lg.xLo+f*dx))
		} else {
			deltas = append(deltas, fmt.Sprintf("%s < %g", xvar, lg.xHi-f*dx))
		}
	}
	return brush, deltas
}

func (lg *loadgen) selectPath(sid string, q, extra string) string {
	p := fmt.Sprintf("/v1/session/%s/select?dataset=%s&step=%d&q=%s",
		url.PathEscape(sid), url.QueryEscape(lg.dataset), lg.step, url.QueryEscape(q))
	if lg.backend != "" {
		p += "&backend=" + url.QueryEscape(lg.backend)
	}
	return p + extra
}

// sessionArm runs one arm's chain in a fresh session and returns the timed
// refinement latencies. incremental selects use refine=and; the baseline
// re-sends the folded conjunction as a fresh brush each step.
func (lg *loadgen) sessionArm(incremental bool, refines int, jit float64, xvar, yvar string) (lats []time.Duration, track time.Duration, errs int) {
	var info session.Info
	if err := lg.postJSON("/v1/session", &info); err != nil {
		return nil, 0, 1
	}
	defer lg.postDiscard("DELETE", "/v1/session/"+url.PathEscape(info.ID))

	brush, deltas := lg.sessionChain(refines, jit, xvar, yvar)
	var sel serve.SessionSelectBody
	if err := lg.postJSON(lg.selectPath(info.ID, brush, ""), &sel); err != nil {
		return nil, 0, 1
	}
	folded := brush
	for _, d := range deltas {
		var path string
		if incremental {
			path = lg.selectPath(info.ID, d, "&refine=and")
		} else {
			folded += " && " + d
			path = lg.selectPath(info.ID, folded, "")
		}
		start := time.Now()
		err := lg.postJSON(path, &sel)
		lat := time.Since(start)
		if err != nil {
			errs++
			continue
		}
		lats = append(lats, lat)
	}
	if incremental {
		var tr serve.SessionTrackBody
		tp := fmt.Sprintf("/v1/session/%s/track?name=sel", url.PathEscape(info.ID))
		start := time.Now()
		if err := lg.postJSON(tp, &tr); err != nil {
			errs++
		} else {
			track = time.Since(start)
		}
	}
	return lats, track, errs
}

// postDiscard issues a bodyless request of the given method, ignoring the
// response; best-effort cleanup.
func (lg *loadgen) postDiscard(method, path string) {
	req, err := http.NewRequest(method, lg.base+path, nil)
	if err != nil {
		return
	}
	if resp, err := lg.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// runSessionBench replays sessions brush → refine×N → track chains through
// both arms and reports per-arm refinement percentiles.
func (lg *loadgen) runSessionBench(sessions, concurrency, refines int, xvar, yvar string) (*sessionBenchReport, error) {
	before, err := lg.stats()
	if err != nil {
		return nil, err
	}
	if before.Sessions == nil {
		return nil, fmt.Errorf("server does not expose session stats — too old for -session-bench?")
	}

	type outcome struct {
		refine, scratch []time.Duration
		track           time.Duration
		errs            int
	}
	jobs := make(chan int)
	outcomes := make(chan outcome, sessions)
	for w := 0; w < concurrency; w++ {
		go func() {
			for i := range jobs {
				var o outcome
				// Distinct epsilon per (session, arm): 2i for the refine
				// arm, 2i+1 for the scratch arm.
				var e int
				o.refine, o.track, e = lg.sessionArm(true, refines, 1e-4*float64(2*i), xvar, yvar)
				o.errs += e
				o.scratch, _, e = lg.sessionArm(false, refines, 1e-4*float64(2*i+1), xvar, yvar)
				o.errs += e
				outcomes <- o
			}
		}()
	}
	go func() {
		for i := 0; i < sessions; i++ {
			jobs <- i
		}
		close(jobs)
	}()

	rep := &sessionBenchReport{Sessions: sessions, Refines: refines}
	var refineAll, scratchAll, trackAll []time.Duration
	for i := 0; i < sessions; i++ {
		o := <-outcomes
		refineAll = append(refineAll, o.refine...)
		scratchAll = append(scratchAll, o.scratch...)
		if o.track > 0 {
			trackAll = append(trackAll, o.track)
		}
		rep.Errors += o.errs
	}
	fillArm(&rep.Refine, refineAll)
	fillArm(&rep.Scratch, scratchAll)
	if rep.Refine.P95MS > 0 {
		rep.SpeedupP95 = rep.Scratch.P95MS / rep.Refine.P95MS
	}
	rep.TrackP50MS = percentileMS(trackAll, 50)
	rep.TrackP95MS = percentileMS(trackAll, 95)

	after, err := lg.stats()
	if err != nil {
		return nil, err
	}
	if after.Sessions != nil {
		rep.ReuseDelta = after.Sessions.RefineReuse - before.Sessions.RefineReuse
		rep.ScratchDelta = after.Sessions.RefineScratch - before.Sessions.RefineScratch
	}
	return rep, nil
}

func fillArm(a *armSummary, lats []time.Duration) {
	a.Requests = len(lats)
	a.P50MS = percentileMS(lats, 50)
	a.P95MS = percentileMS(lats, 95)
	a.MeanMS = meanMS(lats)
	for _, d := range lats {
		if ms := float64(d) / float64(time.Millisecond); ms > a.MaxMS {
			a.MaxMS = ms
		}
	}
}
