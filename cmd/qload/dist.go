// Open-loop traffic shaping: inter-arrival distributions and the request
// mix. Arrival times are drawn independently of response times — the
// defining property of an open-loop generator — so a slow server cannot
// slow the offered load down, and latency percentiles measured against
// the *scheduled* arrival time are free of coordinated omission.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Request kinds the open-loop mix can contain.
const (
	kindProbe  = "probe"  // repeated cached-key histogram (bypasses admission)
	kindDrill  = "drill"  // unique fine-resolution hist2d (backend work)
	kindSweep  = "sweep"  // temporal sweep across all steps (cold, heavy)
	kindIngest = "ingest" // POST /v1/ingest append (lowest priority class)
)

// arrivalGap draws one inter-arrival gap for the named process with the
// given mean.
func arrivalGap(rng *rand.Rand, arrival string, mean time.Duration) (time.Duration, error) {
	switch arrival {
	case "poisson":
		return time.Duration(rng.ExpFloat64() * float64(mean)), nil
	case "uniform":
		// mean/2 .. 3*mean/2 — same mean, bounded burstiness.
		return mean/2 + time.Duration(rng.Float64()*float64(mean)), nil
	case "fixed":
		return mean, nil
	}
	return 0, fmt.Errorf("unknown arrival process %q (poisson | uniform | fixed)", arrival)
}

// reqMix is a weighted request-kind distribution.
type reqMix struct {
	kinds []string
	cum   []float64 // cumulative weights, normalized to 1
}

// parseMix parses "probe=0.3,drill=0.5,sweep=0.2" into a reqMix. Weights
// are normalized, so they need not sum to 1.
func parseMix(s string) (*reqMix, error) {
	valid := map[string]bool{kindProbe: true, kindDrill: true, kindSweep: true, kindIngest: true}
	m := &reqMix{}
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("mix entry %q: want kind=weight", part)
		}
		kind := strings.TrimSpace(kv[0])
		if !valid[kind] {
			return nil, fmt.Errorf("mix entry %q: unknown kind (probe | drill | sweep | ingest)", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if w == 0 {
			continue
		}
		for _, k := range m.kinds {
			if k == kind {
				return nil, fmt.Errorf("mix kind %q repeated", kind)
			}
		}
		total += w
		m.kinds = append(m.kinds, kind)
		m.cum = append(m.cum, total)
	}
	if len(m.kinds) == 0 {
		return nil, fmt.Errorf("mix %q: no kinds with positive weight", s)
	}
	for i := range m.cum {
		m.cum[i] /= total
	}
	return m, nil
}

// pick draws one kind.
func (m *reqMix) pick(rng *rand.Rand) string {
	u := rng.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.kinds) {
		i = len(m.kinds) - 1
	}
	return m.kinds[i]
}

// has reports whether the mix contains a kind.
func (m *reqMix) has(kind string) bool {
	for _, k := range m.kinds {
		if k == kind {
			return true
		}
	}
	return false
}

func (m *reqMix) String() string {
	parts := make([]string, len(m.kinds))
	prev := 0.0
	for i, k := range m.kinds {
		parts[i] = fmt.Sprintf("%s=%.2f", k, m.cum[i]-prev)
		prev = m.cum[i]
	}
	return strings.Join(parts, ",")
}
