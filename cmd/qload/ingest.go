// Read-while-ingest benchmark mode (-ingest-steps > 0): measures how much
// a live ingestion stream perturbs interactive read latency, and how far
// index availability trails data availability.
//
// Two phases over the same session template:
//
//  1. baseline — the standard drill-down replay against the quiet server;
//  2. with_ingest — the same replay while this process concurrently
//     streams new timesteps into POST /v1/ingest, with a monitor sampling
//     /v1/steps to timestamp each step's scan→fastbit upgrade.
//
// The report (BENCH_ingest.json) carries both phases' full latency
// distributions plus the per-step index-upgrade lag (commit → indexed).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

// ingestOptions collects the -ingest-* flags.
type ingestOptions struct {
	steps     int           // timesteps to append during the measured phase
	interval  time.Duration // pause between appends
	particles int           // sim shape: must match the served dataset's run
	beam      int
	dim       int
	seed      uint64
}

// stepLag is one ingested step's timeline relative to its commit ack.
type stepLag struct {
	Step      int     `json:"step"`
	Rows      uint64  `json:"rows"`
	CommitMS  float64 `json:"commit_ms"`        // POST round-trip (durable commit)
	UpgradeMS float64 `json:"index_upgrade_ms"` // commit ack → observed indexed
	Upgraded  bool    `json:"upgraded"`         // false if never observed indexed
}

// ingestResult is the BENCH_ingest.json shape.
type ingestResult struct {
	Dataset     string  `json:"dataset"`
	StepsBefore int     `json:"steps_before"`
	StepsAfter  int     `json:"steps_after"`
	IngestSteps int     `json:"ingest_steps"`
	Baseline    *result `json:"baseline"`
	WithIngest  *result `json:"with_ingest"`
	// P95DeltaMS is the read-latency cost of concurrent ingestion:
	// with_ingest.p95 − baseline.p95.
	P95DeltaMS float64 `json:"p95_delta_ms"`
	// Upgrade lag: how long each step served scan-only before its index.
	UpgradeLags     []stepLag `json:"upgrade_lags"`
	UpgradeMeanMS   float64   `json:"upgrade_mean_ms"`
	UpgradeMaxMS    float64   `json:"upgrade_max_ms"`
	IngestElapsedS  float64   `json:"ingest_elapsed_s"`
	IngestRowsTotal uint64    `json:"ingest_rows_total"`
}

func (r *ingestResult) print(w io.Writer) {
	fmt.Fprintf(w, "read-while-ingest: dataset %q grew %d -> %d steps\n",
		r.Dataset, r.StepsBefore, r.StepsAfter)
	fmt.Fprintf(w, "baseline     p50 %.2fms  p95 %.2fms  p99 %.2fms  (%.1f req/s)\n",
		r.Baseline.P50MS, r.Baseline.P95MS, r.Baseline.P99MS, r.Baseline.RPS)
	fmt.Fprintf(w, "with ingest  p50 %.2fms  p95 %.2fms  p99 %.2fms  (%.1f req/s)  p95 delta %+.2fms\n",
		r.WithIngest.P50MS, r.WithIngest.P95MS, r.WithIngest.P99MS, r.WithIngest.RPS, r.P95DeltaMS)
	fmt.Fprintf(w, "ingested %d steps (%d rows) in %.2fs; index upgrade lag mean %.0fms max %.0fms\n",
		r.IngestSteps, r.IngestRowsTotal, r.IngestElapsedS, r.UpgradeMeanMS, r.UpgradeMaxMS)
}

// postIngest appends one timestep and returns the server's ack.
func (lg *loadgen) postIngest(body serve.IngestBody) (*serve.IngestResponse, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := lg.client.Post(lg.base+"/v1/ingest", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /v1/ingest: %d: %s", resp.StatusCode, out)
	}
	var ack serve.IngestResponse
	if err := json.Unmarshal(out, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

// stepsDetail fetches /v1/steps?detail=1 for the bench dataset.
func (lg *loadgen) stepsDetail() (serve.StepsBody, error) {
	var sb serve.StepsBody
	_, err := lg.getJSON("/v1/steps?detail=1&dataset="+url.QueryEscape(lg.dataset), &sb)
	return sb, err
}

// runIngestBench drives both phases and assembles the report.
func (lg *loadgen) runIngestBench(opt ingestOptions, sessions, concurrency int, xvar, yvar string, coarse, fine int) (*ingestResult, error) {
	before, err := lg.stepsDetail()
	if err != nil {
		return nil, err
	}
	if !before.Live {
		return nil, fmt.Errorf("dataset %q is not live — start qserve with -live", lg.dataset)
	}
	cfg := sim.DefaultConfig()
	cfg.Steps = before.Steps + opt.steps
	cfg.Dim = opt.dim
	cfg.BackgroundPerStep = opt.particles
	cfg.BeamParticles = opt.beam
	cfg.Seed = opt.seed
	run, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}

	res := &ingestResult{
		Dataset:     lg.dataset,
		StepsBefore: before.Steps,
		IngestSteps: opt.steps,
	}
	if res.Baseline, err = lg.run(sessions, concurrency, xvar, yvar, coarse, fine); err != nil {
		return nil, err
	}

	// Concurrent phase: writer + upgrade monitor alongside the replay.
	type commitMark struct {
		at   time.Time
		rows uint64
		ms   float64
	}
	var (
		mu      sync.Mutex
		commits = map[int]commitMark{}    // step -> commit ack time
		indexed = map[int]time.Duration{} // step -> lag from commit to observed indexed
		werr    error
	)
	writerDone := make(chan struct{})
	monitorDone := make(chan struct{})
	ingestStart := time.Now()
	go func() {
		defer close(writerDone)
		for t := before.Steps; t < before.Steps+opt.steps; t++ {
			ps, err := run.Step(t)
			if err != nil {
				werr = err
				return
			}
			body := serve.IngestBody{Dataset: lg.dataset}
			cols := ps.Columns()
			for _, v := range sim.Variables {
				body.Columns = append(body.Columns, serve.IngestColumn{Name: v, Float: cols[v]})
			}
			body.Columns = append(body.Columns, serve.IngestColumn{Name: sim.IDVar, Int: ps.ID})
			start := time.Now()
			ack, err := lg.postIngest(body)
			if err != nil {
				werr = err
				return
			}
			mu.Lock()
			commits[ack.Step] = commitMark{at: time.Now(), rows: ack.Rows,
				ms: float64(time.Since(start)) / float64(time.Millisecond)}
			mu.Unlock()
			res.IngestRowsTotal += ack.Rows
			if opt.interval > 0 {
				time.Sleep(opt.interval)
			}
		}
	}()
	go func() {
		// Sample index states until every ingested step upgraded or the
		// deadline passes; commit-to-observed-indexed is the upgrade lag
		// (quantized by the 20ms sampling period).
		defer close(monitorDone)
		deadline := time.Now().Add(5 * time.Minute)
		for time.Now().Before(deadline) {
			sb, err := lg.stepsDetail()
			if err == nil {
				now := time.Now()
				mu.Lock()
				for _, d := range sb.Detail {
					c, committed := commits[d.Step]
					if committed && d.IndexState == "indexed" {
						if _, seen := indexed[d.Step]; !seen {
							indexed[d.Step] = now.Sub(c.at)
						}
					}
				}
				allDone := len(indexed) == opt.steps
				mu.Unlock()
				if allDone {
					select {
					case <-writerDone:
						return
					default:
					}
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	if res.WithIngest, err = lg.run(sessions, concurrency, xvar, yvar, coarse, fine); err != nil {
		return nil, err
	}
	<-writerDone
	if werr != nil {
		return nil, werr
	}
	<-monitorDone
	res.IngestElapsedS = time.Since(ingestStart).Seconds()
	res.P95DeltaMS = res.WithIngest.P95MS - res.Baseline.P95MS

	after, err := lg.stepsDetail()
	if err != nil {
		return nil, err
	}
	res.StepsAfter = after.Steps

	mu.Lock()
	defer mu.Unlock()
	steps := make([]int, 0, len(commits))
	for t := range commits {
		steps = append(steps, t)
	}
	sort.Ints(steps)
	for _, t := range steps {
		c := commits[t]
		l := stepLag{Step: t, Rows: c.rows, CommitMS: c.ms}
		if lag, ok := indexed[t]; ok {
			l.Upgraded = true
			l.UpgradeMS = float64(lag) / float64(time.Millisecond)
			res.UpgradeMeanMS += l.UpgradeMS
			if l.UpgradeMS > res.UpgradeMaxMS {
				res.UpgradeMaxMS = l.UpgradeMS
			}
		}
		res.UpgradeLags = append(res.UpgradeLags, l)
	}
	if len(indexed) > 0 {
		res.UpgradeMeanMS /= float64(len(indexed))
	}
	return res, nil
}
