package main

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("probe=0.3, drill=0.6,sweep=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.kinds) != 3 || !m.has(kindProbe) || !m.has(kindDrill) || !m.has(kindSweep) {
		t.Fatalf("mix %+v", m)
	}
	if m.has(kindIngest) {
		t.Fatal("phantom ingest kind")
	}
	// Picks follow the weights within sampling noise.
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.pick(rng)]++
	}
	if f := float64(counts[kindDrill]) / n; math.Abs(f-0.6) > 0.03 {
		t.Fatalf("drill frequency %.3f, want ~0.6", f)
	}
	if f := float64(counts[kindProbe]) / n; math.Abs(f-0.3) > 0.03 {
		t.Fatalf("probe frequency %.3f, want ~0.3", f)
	}

	for _, bad := range []string{"", "zz=1", "drill", "drill=-1", "drill=x", "drill=0.5,drill=0.5", "drill=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestArrivalGapMeans(t *testing.T) {
	const mean = 10 * time.Millisecond
	for _, proc := range []string{"poisson", "uniform", "fixed"} {
		rng := rand.New(rand.NewSource(11))
		var sum time.Duration
		const n = 50000
		for i := 0; i < n; i++ {
			g, err := arrivalGap(rng, proc, mean)
			if err != nil {
				t.Fatal(err)
			}
			if g < 0 {
				t.Fatalf("%s: negative gap", proc)
			}
			sum += g
		}
		got := float64(sum) / float64(n) / float64(mean)
		if math.Abs(got-1) > 0.05 {
			t.Errorf("%s: mean gap %.3f× target", proc, got)
		}
	}
	if _, err := arrivalGap(rand.New(rand.NewSource(1)), "zipf", mean); err == nil {
		t.Error("unknown arrival process accepted")
	}
}

// TestCorrectedPercentileCountsScheduleDelay demonstrates the omission
// correction downstream code relies on: latency measured from scheduled
// arrival includes send delay that service latency hides.
func TestCorrectedPercentileCountsScheduleDelay(t *testing.T) {
	// 100 requests scheduled 1ms apart against a server that takes 10ms
	// serially: the k-th completes at (k+1)*10ms, so its corrected latency
	// grows linearly while its service latency is a constant 10ms.
	var corrected, service []time.Duration
	for k := 0; k < 100; k++ {
		scheduled := time.Duration(k) * time.Millisecond
		completion := time.Duration(k+1) * 10 * time.Millisecond
		corrected = append(corrected, completion-scheduled)
		service = append(service, 10*time.Millisecond)
	}
	if p := percentileMS(service, 99); p != 10 {
		t.Fatalf("service p99 = %.1fms, want 10", p)
	}
	if p := percentileMS(corrected, 99); p < 800 {
		t.Fatalf("corrected p99 = %.1fms — queueing delay was omitted", p)
	}
}

func TestOpenResultBadFrac(t *testing.T) {
	r := &openResult{Sent: 100, OK: 90, Shed429: 6, Shed503: 2, Errors: 2}
	if got := r.badFrac(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("badFrac = %v, want 0.1", got)
	}
	if got := (&openResult{}).badFrac(); got != 0 {
		t.Fatalf("empty badFrac = %v", got)
	}
}
