// Found-capacity sweep (-capacity): ramp the offered rate geometrically,
// holding each rate for one phase, until the server stops sustaining it.
// A rate is *sustained* when the non-200 fraction stays under the shed
// budget AND the coordinated-omission-corrected p99 of the answers stays
// under the SLO. The found capacity is the last sustained rate — the max
// QPS the server serves at the p99 SLO — and an overload probe then
// offers 2× that to show the server degrades (sheds, brownouts) instead
// of collapsing.
//
// With -baseline-url the same sweep runs against a second server —
// conventionally the same dataset behind a fixed (non-adaptive) gate —
// and -cap-enforce turns "adaptive found < baseline found" into a
// non-zero exit, making the comparison CI-enforceable.
package main

import (
	"fmt"
	"io"
	"log"
	"time"
)

// capacityOptions collects the -cap-* flags.
type capacityOptions struct {
	start    float64 // initial offered rate (qps)
	growth   float64 // geometric ramp factor between phases
	phase    time.Duration
	max      float64 // stop ramping past this rate
	shedFrac float64 // tolerated non-200 fraction while "sustained"
	slo      time.Duration
	open     openLoopOptions // rate is overwritten per phase
}

// capacityRun is one server's sweep: the ramp, the verdict, the probe.
type capacityRun struct {
	URL      string        `json:"url"`
	FoundQPS float64       `json:"found_qps"` // 0 when even the first rate was unsustainable
	Phases   []*openResult `json:"phases"`
	// Overload is the 2×-found probe: availability near 1 means the server
	// answered (200/429/503) rather than timing out or dropping connections.
	Overload *openResult `json:"overload,omitempty"`
}

// capacityReport is the BENCH_capacity.json shape.
type capacityReport struct {
	SLOMS    float64 `json:"slo_ms"`
	ShedFrac float64 `json:"shed_frac"`
	Arrival  string  `json:"arrival"`
	Mix      string  `json:"mix"`
	PhaseS   float64 `json:"phase_s"`

	Adaptive *capacityRun `json:"adaptive"`
	// Baseline is the same sweep against -baseline-url (fixed gate).
	Baseline *capacityRun `json:"baseline,omitempty"`
	// Speedup is adaptive found ÷ baseline found (0 when no baseline).
	Speedup float64 `json:"speedup,omitempty"`
}

// sustained applies the capacity criterion to one phase.
func (opt capacityOptions) sustained(r *openResult) bool {
	return r.OK > 0 &&
		r.badFrac() <= opt.shedFrac &&
		r.CorrectedP99MS <= float64(opt.slo)/float64(time.Millisecond)
}

// findCapacity runs the ramp against this loadgen's server.
func (lg *loadgen) findCapacity(opt capacityOptions, paths openLoopPaths, feeder *ingestFeeder) (*capacityRun, error) {
	run := &capacityRun{URL: lg.base}
	rate := opt.start
	for rate <= opt.max {
		o := opt.open
		o.rate = rate
		o.duration = opt.phase
		res, err := lg.runOpenLoop(o, paths, feeder)
		if err != nil {
			return nil, err
		}
		run.Phases = append(run.Phases, res)
		ok := opt.sustained(res)
		log.Printf("capacity %s: %.1f qps -> ok %d/%d, corrected p99 %.1fms, sustained=%v",
			lg.base, rate, res.OK, res.Sent, res.CorrectedP99MS, ok)
		if !ok {
			break
		}
		run.FoundQPS = rate
		rate *= opt.growth
	}
	if run.FoundQPS > 0 {
		// Overload probe: twice the found capacity. The server is expected
		// to shed and degrade, not to disappear.
		o := opt.open
		o.rate = 2 * run.FoundQPS
		o.duration = opt.phase
		over, err := lg.runOpenLoop(o, paths, feeder)
		if err != nil {
			return nil, err
		}
		run.Overload = over
		log.Printf("capacity %s: overload probe at %.1f qps -> availability %.3f, degraded %d",
			lg.base, o.rate, over.Availability, over.Degraded)
	}
	return run, nil
}

func (r *capacityReport) print(w io.Writer) {
	fmt.Fprintf(w, "capacity sweep: slo p99 %.0fms, shed budget %.0f%%, %s arrivals, mix %s\n",
		r.SLOMS, 100*r.ShedFrac, r.Arrival, r.Mix)
	printRun := func(label string, cr *capacityRun) {
		if cr == nil {
			return
		}
		fmt.Fprintf(w, "%s %s: found %.1f qps over %d phases\n",
			label, cr.URL, cr.FoundQPS, len(cr.Phases))
		if cr.Overload != nil {
			fmt.Fprintf(w, "  overload 2x: offered %.1f qps  availability %.3f  ok %d  degraded %d  shed %d\n",
				cr.Overload.OfferedQPS, cr.Overload.Availability, cr.Overload.OK,
				cr.Overload.Degraded, cr.Overload.Shed429+cr.Overload.Shed503)
		}
	}
	printRun("adaptive", r.Adaptive)
	printRun("baseline", r.Baseline)
	if r.Speedup > 0 {
		fmt.Fprintf(w, "adaptive/baseline capacity ratio: %.2fx\n", r.Speedup)
	}
}
