// Shard-bench mode (-shard-bench): replay the drill mix against a sharded
// frontend and a single-process baseline serving the same dataset, assert
// the responses are identical — the scatter-gather tier must be
// indistinguishable from one process, per the merge semantics — and report
// per-target latency percentiles plus the frontend's fan-out stats.
package main

import (
	"fmt"
	"io"
	"log"
	"net/url"
	"reflect"
	"time"

	"repro/internal/serve"
)

// shardBenchReport is the BENCH_shard.json shape.
type shardBenchReport struct {
	Sessions int `json:"sessions"`
	// Requests counts requests per target (each is issued to both).
	Requests   int           `json:"requests"`
	Mismatches int           `json:"mismatches"`
	Frontend   targetSummary `json:"frontend"`
	Baseline   targetSummary `json:"baseline"`
	// Sharding is the frontend's fleet view after the run: scatter and
	// fragment fan-out counts, partial responses, per-shard cache rates.
	Sharding *serve.ShardingStats `json:"sharding,omitempty"`
}

// targetSummary is one target's latency distribution over the run.
type targetSummary struct {
	URL      string  `json:"url"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MeanMS   float64 `json:"mean_ms"`
	MaxMS    float64 `json:"max_ms"`
	Errors   int     `json:"errors"`
	Partials int     `json:"partials"` // responses marked partial (degraded merges)
}

func (r *shardBenchReport) print(w io.Writer) {
	fmt.Fprintf(w, "shard-bench: sessions %d  requests/target %d  mismatches %d\n",
		r.Sessions, r.Requests, r.Mismatches)
	for _, t := range []struct {
		name string
		s    targetSummary
	}{{"frontend", r.Frontend}, {"baseline", r.Baseline}} {
		fmt.Fprintf(w, "%-9s %s  p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms  max %.2fms  errors %d  partials %d\n",
			t.name, t.s.URL, t.s.P50MS, t.s.P95MS, t.s.P99MS, t.s.MeanMS, t.s.MaxMS, t.s.Errors, t.s.Partials)
	}
	if r.Sharding != nil {
		fmt.Fprintf(w, "fan-out: shards %d  scatters %d  fragments %d  partials %d  fleet cache hit rate %.1f%%\n",
			r.Sharding.Shards, r.Sharding.Scatters, r.Sharding.Fragments,
			r.Sharding.Partials, 100*r.Sharding.FleetCacheHitRate)
	}
}

// benchReq is one request of the identity mix: the path plus how to
// compare the two targets' bodies.
type benchReq struct {
	path string
	kind string // query | hist1d | hist2d
}

// shardMix builds the drill-mix request set for one session: the standard
// refinement loop (count, coarse conditional 2D, refined count, fine 2D)
// plus a data-ranged conditional 1D (two-phase min/max scatter) and an
// unconditional 1D (wholesale routing) so every planner path is compared.
func (lg *loadgen) shardMix(i int, xvar, yvar string, coarse, fine int) []benchReq {
	t1 := lg.yLo + 0.6*(lg.yHi-lg.yLo)
	t2 := lg.yLo + 0.8*(lg.yHi-lg.yLo)
	xmid := (lg.xLo + lg.xHi) / 2
	q1 := fmt.Sprintf("%s > %g", yvar, t1)
	q2 := fmt.Sprintf("%s > %g && %s > %g", yvar, t2, xvar, xmid)
	if i%2 == 1 {
		q2 = fmt.Sprintf("%s > %g && %s > %g", xvar, xmid, yvar, t2)
	}
	common := fmt.Sprintf("dataset=%s&step=%d", url.QueryEscape(lg.dataset), lg.step)
	if lg.backend != "" {
		common += "&backend=" + url.QueryEscape(lg.backend)
	}
	return []benchReq{
		{fmt.Sprintf("/v1/query?%s&q=%s", common, url.QueryEscape(q1)), "query"},
		{fmt.Sprintf("/v1/hist2d?%s&x=%s&y=%s&xbins=%d&ybins=%d&q=%s",
			common, url.QueryEscape(xvar), url.QueryEscape(yvar), coarse, coarse, url.QueryEscape(q1)), "hist2d"},
		{fmt.Sprintf("/v1/query?%s&q=%s", common, url.QueryEscape(q2)), "query"},
		{fmt.Sprintf("/v1/hist2d?%s&x=%s&y=%s&xbins=%d&ybins=%d&q=%s",
			common, url.QueryEscape(xvar), url.QueryEscape(yvar), fine, fine, url.QueryEscape(q2)), "hist2d"},
		{fmt.Sprintf("/v1/hist1d?%s&var=%s&bins=%d&q=%s",
			common, url.QueryEscape(yvar), fine, url.QueryEscape(q1)), "hist1d"},
		{fmt.Sprintf("/v1/hist1d?%s&var=%s&bins=%d", common, url.QueryEscape(xvar), coarse), "hist1d"},
	}
}

// fetchBench issues one mix request and returns the comparable portion of
// the body plus whether the response was a partial merge.
func (lg *loadgen) fetchBench(req benchReq) (body any, partial bool, lat time.Duration, err error) {
	start := time.Now()
	switch req.kind {
	case "query":
		var b serve.QueryBody
		_, err = lg.getJSON(req.path, &b)
		lat = time.Since(start)
		// Compare the selection summary, not timings or cache outcomes.
		return map[string]any{"rows": b.Rows, "matches": b.Matches}, b.Partial, lat, err
	case "hist1d":
		var b serve.Hist1DBody
		_, err = lg.getJSON(req.path, &b)
		lat = time.Since(start)
		return map[string]any{"edges": b.Edges, "counts": b.Counts, "total": b.Total}, b.Partial, lat, err
	default: // hist2d
		var b serve.Hist2DBody
		_, err = lg.getJSON(req.path, &b)
		lat = time.Since(start)
		return map[string]any{"xedges": b.XEdges, "yedges": b.YEdges,
			"counts": b.Counts, "total": b.Total}, b.Partial, lat, err
	}
}

// shardOutcome is one session's paired-request results.
type shardOutcome struct {
	frontLat, baseLat   []time.Duration
	frontErrs, baseErrs int
	frontPartials       int
	basePartials        int
	mismatches          []string
}

// runShardBench replays the mix against both targets and compares every
// response pair.
func (lg *loadgen) runShardBench(base *loadgen, sessions, concurrency int, xvar, yvar string, coarse, fine int) (*shardBenchReport, error) {
	jobs := make(chan int)
	outcomes := make(chan shardOutcome, sessions)
	for w := 0; w < concurrency; w++ {
		go func() {
			for i := range jobs {
				var o shardOutcome
				for _, req := range lg.shardMix(i, xvar, yvar, coarse, fine) {
					fb, fp, flat, ferr := lg.fetchBench(req)
					bb, bp, blat, berr := base.fetchBench(req)
					if ferr != nil {
						o.frontErrs++
					} else {
						o.frontLat = append(o.frontLat, flat)
						if fp {
							o.frontPartials++
						}
					}
					if berr != nil {
						o.baseErrs++
					} else {
						o.baseLat = append(o.baseLat, blat)
						if bp {
							o.basePartials++
						}
					}
					// A partial merge is a deliberate degradation, not a bug;
					// only complete answers must match the baseline exactly.
					if ferr == nil && berr == nil && !fp && !reflect.DeepEqual(fb, bb) {
						o.mismatches = append(o.mismatches,
							fmt.Sprintf("%s: frontend %v != baseline %v", req.path, fb, bb))
					}
				}
				outcomes <- o
			}
		}()
	}
	go func() {
		for i := 0; i < sessions; i++ {
			jobs <- i
		}
		close(jobs)
	}()

	rep := &shardBenchReport{Sessions: sessions,
		Frontend: targetSummary{URL: lg.base}, Baseline: targetSummary{URL: base.base}}
	var frontAll, baseAll []time.Duration
	logged := 0
	for i := 0; i < sessions; i++ {
		o := <-outcomes
		frontAll = append(frontAll, o.frontLat...)
		baseAll = append(baseAll, o.baseLat...)
		rep.Frontend.Errors += o.frontErrs
		rep.Baseline.Errors += o.baseErrs
		rep.Frontend.Partials += o.frontPartials
		rep.Baseline.Partials += o.basePartials
		rep.Mismatches += len(o.mismatches)
		for _, m := range o.mismatches {
			if logged < 5 {
				log.Printf("mismatch: %s", m)
				logged++
			}
		}
	}
	rep.Requests = len(frontAll) + rep.Frontend.Errors
	fillSummary(&rep.Frontend, frontAll)
	fillSummary(&rep.Baseline, baseAll)

	st, err := lg.stats()
	if err != nil {
		return nil, fmt.Errorf("frontend stats: %w", err)
	}
	rep.Sharding = st.Sharding
	return rep, nil
}

func fillSummary(s *targetSummary, lats []time.Duration) {
	s.P50MS = percentileMS(lats, 50)
	s.P95MS = percentileMS(lats, 95)
	s.P99MS = percentileMS(lats, 99)
	s.MeanMS = meanMS(lats)
	for _, d := range lats {
		if ms := float64(d) / float64(time.Millisecond); ms > s.MaxMS {
			s.MaxMS = ms
		}
	}
}
