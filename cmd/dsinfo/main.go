// Command dsinfo summarises a dataset directory: per-timestep record
// counts, data and index file sizes, indexed variables and their bin
// counts — the numbers the paper reports for its datasets (e.g. "each
// timestep ≈7 GB including ≈2 GB of index").
//
// Usage:
//
//	dsinfo -data data/lwfa
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsinfo: ")

	data := flag.String("data", "", "dataset directory (required)")
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := fastquery.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	ds := src.Dataset()
	fmt.Printf("dataset %q: %d timesteps, variables %v\n\n",
		ds.Meta.Name, ds.Meta.Steps, ds.Meta.Variables)

	table := report.NewTable("", "step", "records", "data_mb", "index_mb", "indexed_vars")
	var totalData, totalIndex int64
	var totalRecords uint64
	for t := 0; t < src.Steps(); t++ {
		st, err := src.OpenStep(t)
		if err != nil {
			log.Fatal(err)
		}
		rows := st.Rows()
		st.Close()
		totalRecords += rows

		dataSize := fileSize(ds.StepPath(t))
		totalData += dataSize
		indexSize := int64(0)
		indexedVars := "-"
		if ds.HasIndex(t) {
			indexSize = fileSize(ds.IndexPath(t))
			ls, err := fastbit.OpenLazy(ds.IndexPath(t))
			if err == nil {
				vars := ls.Columns()
				if ls.IDVar() != "" {
					vars = append(vars, ls.IDVar())
				}
				indexedVars = strings.Join(vars, ",")
				ls.Close()
			}
		}
		totalIndex += indexSize
		table.AddRow(
			fmt.Sprintf("%d", t),
			fmt.Sprintf("%d", rows),
			fmt.Sprintf("%.2f", float64(dataSize)/1e6),
			fmt.Sprintf("%.2f", float64(indexSize)/1e6),
			indexedVars,
		)
	}
	if err := table.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total: %d records, %.2f MB data + %.2f MB index (%.1f%% overhead)\n",
		totalRecords, float64(totalData)/1e6, float64(totalIndex)/1e6,
		100*float64(totalIndex)/float64(max64(totalData, 1)))
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
