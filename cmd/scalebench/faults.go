package main

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/faultnet"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/report"
)

// This file implements -faults: an end-to-end resilience demo that runs a
// real net/rpc histogram sweep through the faultnet fault-injection
// harness. Four workers serve the sweep: one clean, two behind injected
// errors/drops/latency, and one that is killed mid-sweep. The sweep runs
// twice — once with failover (full results despite the dead node) and once
// with failover disabled under ReturnPartial (partial results plus a
// structured error) — and every returned histogram is checked against a
// local serial computation.

type faultyWorkers struct {
	addrs   []string
	servers []*cluster.Server
	injects []*faultnet.Listener // index-aligned with addrs; nil = clean worker
	victim  *faultnet.Listener
}

func (fw *faultyWorkers) close() {
	for _, s := range fw.servers {
		s.Close()
	}
	for _, f := range fw.injects {
		if f != nil {
			f.Kill()
		}
	}
}

// startFaultyWorkers launches 4 workers: worker 0 clean, workers 1-2
// behind the configured fault mix, worker 3 behind latency only (so its
// calls are reliably in flight when it is killed).
func (b *bench) startFaultyWorkers(cfg faultnet.Config) (*faultyWorkers, error) {
	const n = 4
	fw := &faultyWorkers{}
	for i := 0; i < n; i++ {
		srv, err := cluster.NewServer(cluster.NewWorker(b.dir))
		if err != nil {
			fw.close()
			return nil, err
		}
		fw.servers = append(fw.servers, srv)
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fw.close()
			return nil, err
		}
		var l net.Listener = inner
		var fl *faultnet.Listener
		switch {
		case i == n-1:
			fl = faultnet.Wrap(inner, faultnet.Config{
				Seed:    cfg.Seed + int64(i),
				Latency: 5 * time.Millisecond,
			})
			fw.victim = fl
		case i > 0:
			c := cfg
			c.Seed = cfg.Seed + int64(i)
			fl = faultnet.Wrap(inner, c)
		}
		if fl != nil {
			l = fl
		}
		fw.injects = append(fw.injects, fl)
		srv.Serve(l)
		fw.addrs = append(fw.addrs, inner.Addr().String())
	}
	return fw, nil
}

func (b *bench) faultStudy(cfg faultnet.Config) error {
	nSteps := 2 * b.src.Steps()
	if nSteps < 16 {
		nSteps = 16
	}
	steps := make([]int, nSteps)
	for i := range steps {
		steps[i] = i % b.src.Steps()
	}
	spec := histPairs(b.bins)[4]

	// Local serial reference for verifying every surviving result.
	want := make([]*histogram.Hist2D, b.src.Steps())
	for t := range want {
		st, err := b.src.OpenStep(t)
		if err != nil {
			return err
		}
		h, err := st.Histogram2D(nil, spec, fastquery.FastBit)
		st.Close()
		if err != nil {
			return err
		}
		want[t] = h
	}

	base := cluster.PoolConfig{
		CallTimeout:   2 * time.Second,
		MaxRetries:    3,
		BackoffBase:   5 * time.Millisecond,
		BackoffMax:    100 * time.Millisecond,
		ProbeInterval: 100 * time.Millisecond,
		Seed:          cfg.Seed,
	}
	failover := base
	failover.MaxFailovers = -1
	partial := base
	partial.MaxFailovers = 0
	partial.Partial = cluster.ReturnPartial

	sweeps := report.NewTable(
		fmt.Sprintf("Fault-tolerance demo — %d-step histogram sweep, 4 workers (1 clean, 2 faulty err=%.2f drop=%.2f, 1 killed mid-sweep)",
			len(steps), cfg.ErrProb, cfg.DropProb),
		"scenario", "ok", "failed", "wall_s", "attempts", "retries", "timeouts", "reconnects", "failovers")
	injected := report.NewTable("Injected faults per worker",
		"scenario", "worker", "accepted", "drops", "errors", "delays", "killed")

	for _, sc := range []struct {
		name string
		pcfg cluster.PoolConfig
	}{
		{"failover", failover},
		{"partial", partial},
	} {
		fw, err := b.startFaultyWorkers(cfg)
		if err != nil {
			return err
		}
		pool, err := cluster.DialConfig(fw.addrs, sc.pcfg)
		if err != nil {
			fw.close()
			return err
		}
		kill := time.AfterFunc(25*time.Millisecond, fw.victim.Kill)
		hists, err := pool.HistogramSweep(steps, "", spec, fastquery.FastBit)
		kill.Stop()
		var se *cluster.SweepError
		if err != nil && !errors.As(err, &se) {
			pool.Close()
			fw.close()
			return fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		ok := 0
		for i, h := range hists {
			if h != nil && h.Total() == want[steps[i]].Total() {
				ok++
			}
		}
		ss := pool.LastSweepStats()
		sweeps.AddRow(sc.name,
			fmt.Sprintf("%d/%d", ok, len(steps)), fmt.Sprintf("%d", ss.Failed),
			report.Seconds(ss.Wall),
			fmt.Sprintf("%d", ss.Attempts), fmt.Sprintf("%d", ss.Retries),
			fmt.Sprintf("%d", ss.Timeouts), fmt.Sprintf("%d", ss.Reconnects),
			fmt.Sprintf("%d", ss.Failovers))
		for i, fl := range fw.injects {
			if fl == nil {
				injected.AddRow(sc.name, fmt.Sprintf("%d (clean)", i), "-", "-", "-", "-", "-")
				continue
			}
			fs := fl.Stats()
			role := "faulty"
			if fl == fw.victim {
				role = "victim"
			}
			injected.AddRow(sc.name, fmt.Sprintf("%d (%s)", i, role),
				fmt.Sprintf("%d", fs.Accepted), fmt.Sprintf("%d", fs.Drops),
				fmt.Sprintf("%d", fs.Errors), fmt.Sprintf("%d", fs.Delays),
				fmt.Sprintf("%v", fs.Killed))
		}
		pool.Close()
		fw.close()
	}
	if err := b.emit(sweeps); err != nil {
		return err
	}
	return b.emit(injected)
}
