// Command scalebench reproduces the paper's parallel scalability study on
// a Cray XT4 (Section V-C, Figures 14-17):
//
//	-exp hist   parallel histogram computation: timings (Fig. 14) and
//	            strong-scaling speedups (Fig. 15)
//	-exp track  parallel particle tracking: timings (Fig. 16) and
//	            speedups (Fig. 17)
//	-exp all    both
//
// Like the paper, timesteps are statically assigned to nodes in a strided
// fashion and nodes work independently. Per-timestep task durations are
// measured once (serially, for clean numbers) and the completion time for
// each node count is the makespan of its assignment — a faithful model of
// a distributed-memory machine with independent nodes, evaluated for 1 to
// 100 nodes regardless of local core count. Pass -real-rpc to also run
// the work over actual net/rpc worker processes for the node counts that
// fit the local machine.
//
// Usage:
//
//	lwfagen -out /tmp/lwfa -steps 30 -particles 200000
//	scalebench -data /tmp/lwfa -exp all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/faultnet"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scalebench: ")

	var (
		data      = flag.String("data", "", "dataset directory (required)")
		exp       = flag.String("exp", "all", "hist | track | all")
		nodesCSV  = flag.String("nodes", "1,2,5,10,20,50,100", "node counts to evaluate")
		bins      = flag.Int("bins", 1024, "histogram bins per axis")
		trackHits = flag.Int("track-hits", 500, "target particle count for the tracking study")
		bwMBs     = flag.Float64("io-bandwidth", 0, "modelled per-node I/O bandwidth in MB/s (0 = off)")
		seekMs    = flag.Float64("io-seek", 0, "modelled per-seek latency in ms")
		assignStr = flag.String("assign", "strided", "strided | blocked timestep assignment")
		realRPC   = flag.Bool("real-rpc", false, "also execute over net/rpc workers where the node count fits")
		schedules = flag.Bool("schedules", false, "also compare static/dynamic/LPT scheduling (ablation)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		faults    = flag.Bool("faults", false, "run the fault-injection resilience demo instead of the scaling studies")
		faultErr  = flag.Float64("fault-err", 0.2, "with -faults: per-I/O-op injected error probability on faulty workers")
		faultDrop = flag.Float64("fault-drop", 0.02, "with -faults: per-I/O-op connection-drop probability on faulty workers")
		faultLat  = flag.Float64("fault-latency", 2, "with -faults: injected latency per I/O op in ms on faulty workers")
		faultSeed = flag.Int64("fault-seed", 1, "with -faults: fault-schedule RNG seed")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	nodes, err := parseNodes(*nodesCSV)
	if err != nil {
		log.Fatal(err)
	}
	src, err := fastquery.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	assign := cluster.Strided
	if *assignStr == "blocked" {
		assign = cluster.Blocked
	} else if *assignStr != "strided" {
		log.Fatalf("unknown assignment %q", *assignStr)
	}
	b := &bench{
		src:       src,
		dir:       *data,
		nodes:     nodes,
		bins:      *bins,
		csv:       *csv,
		assign:    assign,
		rpc:       *realRPC,
		schedules: *schedules,
		model: cluster.IOModel{
			BandwidthBytesPerSec: *bwMBs * 1e6,
			SeekLatency:          time.Duration(*seekMs * float64(time.Millisecond)),
		},
	}
	if *faults {
		if err := b.faultStudy(faultnet.Config{
			Seed:     *faultSeed,
			ErrProb:  *faultErr,
			DropProb: *faultDrop,
			Latency:  time.Duration(*faultLat * float64(time.Millisecond)),
		}); err != nil {
			log.Fatal(err)
		}
		return
	}
	switch *exp {
	case "hist":
		err = b.histStudy()
	case "track":
		err = b.trackStudy(*trackHits)
	case "all":
		if err = b.histStudy(); err == nil {
			err = b.trackStudy(*trackHits)
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type bench struct {
	src       *fastquery.Source
	dir       string
	nodes     []int
	bins      int
	csv       bool
	assign    func(nTasks, nodes int) cluster.Assignment
	rpc       bool
	schedules bool
	model     cluster.IOModel
}

// scheduleTable emits the static/dynamic/LPT scheduling comparison.
func (b *bench) scheduleTable(title string, results []cluster.Result) error {
	table := report.NewTable(title, "nodes", "strided_s", "blocked_s", "dynamic_s", "lpt_s")
	for _, cmp := range cluster.CompareSchedules(results, b.nodes) {
		table.AddRow(fmt.Sprintf("%d", cmp.Nodes),
			report.Seconds(cmp.Strided), report.Seconds(cmp.Blocked),
			report.Seconds(cmp.Dynamic), report.Seconds(cmp.LPT))
	}
	return b.emit(table)
}

func (b *bench) emit(t *report.Table) error {
	if b.csv {
		return t.FprintCSV(os.Stdout)
	}
	return t.Fprint(os.Stdout)
}

// histPairs is the paper's workload: five histogram pairs over the
// position and momentum fields per timestep.
func histPairs(bins int) []histogram.Spec2D {
	return []histogram.Spec2D{
		histogram.NewSpec2D("x", "y", bins, bins),
		histogram.NewSpec2D("y", "z", bins, bins),
		histogram.NewSpec2D("px", "py", bins, bins),
		histogram.NewSpec2D("py", "pz", bins, bins),
		histogram.NewSpec2D("x", "px", bins, bins),
	}
}

// condThreshold picks the conditional threshold like the paper's
// px > 7e10: a high-momentum cut. It is derived from the data so scaled
// datasets keep a comparable selectivity.
func (b *bench) condThreshold() (float64, error) {
	st, err := b.src.OpenStep(b.src.Steps() - 1)
	if err != nil {
		return 0, err
	}
	defer st.Close()
	_, hi, err := st.MinMax("px")
	if err != nil {
		return 0, err
	}
	return 0.6 * hi, nil
}

// histTasks builds the per-timestep histogram tasks.
func (b *bench) histTasks(cond query.Expr, backend fastquery.Backend) []cluster.Task {
	tasks := make([]cluster.Task, b.src.Steps())
	for t := 0; t < b.src.Steps(); t++ {
		t := t
		tasks[t] = cluster.Task{Step: t, Run: func() (uint64, int, error) {
			st, err := b.src.OpenStep(t)
			if err != nil {
				return 0, 0, err
			}
			defer st.Close()
			for _, spec := range histPairs(b.bins) {
				if _, err := st.Histogram2D(cond, spec, backend); err != nil {
					return 0, 0, err
				}
			}
			return st.IOBytes(), 2 * len(histPairs(b.bins)), nil
		}}
	}
	return tasks
}

func (b *bench) histStudy() error {
	thr, err := b.condThreshold()
	if err != nil {
		return err
	}
	cond := &query.Compare{Var: "px", Op: query.GT, Value: thr}

	variants := []struct {
		name    string
		cond    query.Expr
		backend fastquery.Backend
	}{
		{"FastBit Uncond.", nil, fastquery.FastBit},
		{"Custom Uncond.", nil, fastquery.Scan},
		{"FastBit Cond.", cond, fastquery.FastBit},
		{"Custom Cond.", cond, fastquery.Scan},
	}

	timing := report.NewTable(
		fmt.Sprintf("Fig 14 — parallel histogram computation, %d timesteps, 5 pairs x %dx%d bins (cond: px > %.3g)",
			b.src.Steps(), b.bins, b.bins, thr),
		append([]string{"nodes"}, variantNames(variants)...)...)
	speedup := report.NewTable(
		"Fig 15 — scalability of parallel histogram computation",
		append([]string{"nodes"}, variantNames(variants)...)...)

	curves := make([][]cluster.ScalingPoint, len(variants))
	var fastbitCondResults []cluster.Result
	for i, v := range variants {
		results, err := cluster.RunSerial(b.histTasks(v.cond, v.backend), b.model)
		if err != nil {
			return err
		}
		curves[i] = cluster.StrongScaling(results, b.nodes, b.assign)
		if v.name == "FastBit Cond." {
			fastbitCondResults = results
		}
	}
	fillScalingTables(timing, speedup, b.nodes, curves)
	if err := b.emit(timing); err != nil {
		return err
	}
	if err := b.emit(speedup); err != nil {
		return err
	}
	if b.schedules {
		if err := b.scheduleTable("Ablation — scheduling strategies, FastBit conditional histograms", fastbitCondResults); err != nil {
			return err
		}
	}
	if b.rpc {
		return b.rpcHistStudy(cond)
	}
	return nil
}

// rpcHistStudy repeats the conditional FastBit histogram sweep over real
// net/rpc workers for the feasible node counts.
func (b *bench) rpcHistStudy(cond query.Expr) error {
	steps := make([]int, b.src.Steps())
	for i := range steps {
		steps[i] = i
	}
	table := report.NewTable("Fig 14 (real net/rpc execution) — FastBit conditional histograms",
		"nodes", "wall_s")
	for _, n := range b.nodes {
		if n > 2*b.src.Steps() {
			continue
		}
		addrs, shutdown, err := cluster.StartLocalWorkers(n, b.dir)
		if err != nil {
			return err
		}
		pool, err := cluster.Dial(addrs)
		if err != nil {
			shutdown()
			return err
		}
		start := time.Now()
		_, err = pool.HistogramSweep(steps, cond.String(), histPairs(b.bins)[4], fastquery.FastBit)
		wall := time.Since(start)
		pool.Close()
		shutdown()
		if err != nil {
			return err
		}
		table.AddRow(fmt.Sprintf("%d", n), report.Seconds(wall))
	}
	return b.emit(table)
}

// trackIDSet selects ~targetHits particles at the last timestep.
func (b *bench) trackIDSet(targetHits int) ([]int64, float64, error) {
	st, err := b.src.OpenStep(b.src.Steps() - 1)
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	px, err := st.ReadColumn("px")
	if err != nil {
		return nil, 0, err
	}
	sorted := append([]float64(nil), px...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := targetHits
	if k >= len(sorted) {
		k = len(sorted) / 2
	}
	thr := (sorted[k-1] + sorted[k]) / 2
	ids, err := st.SelectIDs(&query.Compare{Var: "px", Op: query.GT, Value: thr}, fastquery.FastBit)
	if err != nil {
		return nil, 0, err
	}
	return ids, thr, nil
}

func (b *bench) trackTasks(ids []int64, backend fastquery.Backend) []cluster.Task {
	tasks := make([]cluster.Task, b.src.Steps())
	for t := 0; t < b.src.Steps(); t++ {
		t := t
		tasks[t] = cluster.Task{Step: t, Run: func() (uint64, int, error) {
			st, err := b.src.OpenStep(t)
			if err != nil {
				return 0, 0, err
			}
			defer st.Close()
			if _, err := st.FindIDs(ids, backend); err != nil {
				return 0, 0, err
			}
			return st.IOBytes(), 1, nil
		}}
	}
	return tasks
}

func (b *bench) trackStudy(targetHits int) error {
	ids, thr, err := b.trackIDSet(targetHits)
	if err != nil {
		return err
	}
	variants := []struct {
		name    string
		backend fastquery.Backend
	}{
		{"FastBit", fastquery.FastBit},
		{"Custom", fastquery.Scan},
	}
	timing := report.NewTable(
		fmt.Sprintf("Fig 16 — parallel particle tracking, %d particles (px > %.3g) over %d timesteps",
			len(ids), thr, b.src.Steps()),
		"nodes", "FastBit", "Custom")
	speedup := report.NewTable("Fig 17 — scalability of parallel particle tracking",
		"nodes", "FastBit", "Custom")

	curves := make([][]cluster.ScalingPoint, len(variants))
	var fastbitResults []cluster.Result
	for i, v := range variants {
		results, err := cluster.RunSerial(b.trackTasks(ids, v.backend), b.model)
		if err != nil {
			return err
		}
		curves[i] = cluster.StrongScaling(results, b.nodes, b.assign)
		if v.name == "FastBit" {
			fastbitResults = results
		}
	}
	fillScalingTables(timing, speedup, b.nodes, curves)
	if err := b.emit(timing); err != nil {
		return err
	}
	if err := b.emit(speedup); err != nil {
		return err
	}
	if b.schedules {
		return b.scheduleTable("Ablation — scheduling strategies, FastBit particle tracking", fastbitResults)
	}
	return nil
}

func variantNames[T any](vs []struct {
	name    string
	cond    query.Expr
	backend T
}) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.name
	}
	return out
}

func fillScalingTables(timing, speedup *report.Table, nodes []int, curves [][]cluster.ScalingPoint) {
	for row, n := range nodes {
		tCells := []string{fmt.Sprintf("%d", n)}
		sCells := []string{fmt.Sprintf("%d", n)}
		for _, curve := range curves {
			tCells = append(tCells, report.Seconds(curve[row].Time))
			sCells = append(sCells, fmt.Sprintf("%.2f", curve[row].Speedup))
		}
		timing.AddRow(tCells...)
		speedup.AddRow(sCells...)
	}
}

func parseNodes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no node counts in %q", s)
	}
	return out, nil
}
