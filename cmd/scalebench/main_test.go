package main

import "testing"

func TestParseNodes(t *testing.T) {
	got, err := parseNodes("1,2, 5 ,100")
	if err != nil || len(got) != 4 || got[3] != 100 {
		t.Fatalf("parseNodes = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-2", "x", "1,,x"} {
		if _, err := parseNodes(bad); err == nil {
			t.Fatalf("parseNodes(%q) accepted", bad)
		}
	}
}

func TestHistPairs(t *testing.T) {
	specs := histPairs(64)
	if len(specs) != 5 {
		t.Fatalf("histPairs = %d specs", len(specs))
	}
	for _, s := range specs {
		if s.XBins != 64 || s.YBins != 64 {
			t.Fatalf("spec bins = %d x %d", s.XBins, s.YBins)
		}
	}
}
