// Command lwfagen generates a synthetic laser-wakefield particle dataset
// with FastBit-style sidecar indexes — the one-time preprocessing step of
// the paper's Figure 1.
//
// Usage:
//
//	lwfagen -out data/lwfa2d -steps 38 -particles 50000 -beam 600
//	lwfagen -out data/lwfa3d -dim 3 -steps 30 -particles 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fastbit"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lwfagen: ")

	var (
		out       = flag.String("out", "", "output dataset directory (required)")
		steps     = flag.Int("steps", 38, "number of timesteps")
		dim       = flag.Int("dim", 2, "spatial dimensionality (2 or 3)")
		particles = flag.Int("particles", 50000, "approximate background particles per timestep")
		beam      = flag.Int("beam", 600, "particles per trapped beam")
		seed      = flag.Uint64("seed", 0x5eed, "deterministic seed")
		bins      = flag.Int("index-bins", 256, "bitmap index bins per variable (uniform binning)")
		precision = flag.Int("index-precision", 0, "precision-based index binning (significant digits; 0 = uniform)")
		skipIndex = flag.Bool("skip-index", false, "write data files only, no indexes")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := sim.DefaultConfig()
	cfg.Steps = *steps
	cfg.Dim = *dim
	cfg.BackgroundPerStep = *particles
	cfg.BeamParticles = *beam
	cfg.Seed = *seed

	opt := sim.WriteOptions{
		Index:     fastbit.IndexOptions{Bins: *bins, Precision: *precision},
		SkipIndex: *skipIndex,
	}
	if !*quiet {
		opt.Progress = func(step, total, particles int) {
			log.Printf("step %d/%d written (%d particles)", step+1, total, particles)
		}
	}
	ds, err := sim.WriteDataset(*out, cfg, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %q: %d steps, variables %v\n", ds.Dir, ds.Meta.Steps, ds.Meta.Variables)
}
