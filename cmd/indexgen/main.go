// Command indexgen performs the one-time index preprocessing over an
// existing dataset (Figure 1's indexing path): it reads each timestep's
// columns and writes the sidecar bitmap + identifier index file, enabling
// the FastBit backend on data generated with `lwfagen -skip-index` or
// produced elsewhere.
//
// Usage:
//
//	indexgen -data data/lwfa
//	indexgen -data data/lwfa -bins 512 -force
//	indexgen -data data/lwfa -precision 2 -vars px,py,x
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexgen: ")

	var (
		data      = flag.String("data", "", "dataset directory (required)")
		bins      = flag.Int("bins", 256, "uniform bins per variable")
		precision = flag.Int("precision", 0, "precision-based binning (significant digits; 0 = uniform)")
		exact     = flag.Bool("exact", false, "one bin per distinct value (low-cardinality columns only)")
		varsCSV   = flag.String("vars", "", "comma-separated variables to index (default: all)")
		idVar     = flag.String("id", "id", "identifier column name")
		force     = flag.Bool("force", false, "rebuild existing indexes")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	opt := fastquery.IndexOptions{
		IDVar: *idVar,
		Index: fastbit.IndexOptions{Bins: *bins, Precision: *precision, Exact: *exact},
		Force: *force,
	}
	if *varsCSV != "" {
		for _, v := range strings.Split(*varsCSV, ",") {
			if v = strings.TrimSpace(v); v != "" {
				opt.Vars = append(opt.Vars, v)
			}
		}
	}
	if !*quiet {
		opt.Progress = func(step, total, indexBytes int) {
			if indexBytes < 0 {
				log.Printf("step %d/%d: index exists, skipped", step+1, total)
				return
			}
			log.Printf("step %d/%d indexed (%.1f MB)", step+1, total, float64(indexBytes)/1e6)
		}
	}
	if err := fastquery.BuildIndexes(*data, opt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done")
}
