package main

import "testing"

func TestSplitList(t *testing.T) {
	got := splitList(" x, y ,,px ")
	if len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "px" {
		t.Fatalf("splitList = %v", got)
	}
	if got := splitList(""); len(got) != 0 {
		t.Fatalf("splitList empty = %v", got)
	}
}

func TestParseSteps(t *testing.T) {
	got, err := parseSteps("14,16, 18")
	if err != nil || len(got) != 3 || got[0] != 14 || got[2] != 18 {
		t.Fatalf("parseSteps = %v, %v", got, err)
	}
	if _, err := parseSteps("a,b"); err == nil {
		t.Fatal("bad steps accepted")
	}
	if _, err := parseSteps(" , "); err == nil {
		t.Fatal("empty steps accepted")
	}
}
