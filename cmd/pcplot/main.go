// Command pcplot renders histogram-based parallel coordinates plots from a
// dataset: context+focus views, temporal overlays, traditional polyline
// plots and the hybrid outlier display (paper Figures 2, 4 and 9).
//
// Usage:
//
//	pcplot -data data/lwfa2d -step 37 -vars x,y,px,py -focus "px > 8.872e10" -out beam.png
//	pcplot -data data/lwfa2d -steps 14,16,18,20,22 -vars x,xrel,px -focus "px > 1e10" -out temporal.png
//	pcplot -data data/lwfa2d -step 37 -vars x,px -mode lines -focus "px > 8.872e10" -out lines.png
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fastquery"
	"repro/internal/histogram"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pcplot: ")

	var (
		data    = flag.String("data", "", "dataset directory (required)")
		step    = flag.Int("step", 0, "timestep to plot")
		steps   = flag.String("steps", "", "comma-separated steps for a temporal plot")
		vars    = flag.String("vars", "x,y,px,py", "comma-separated axis variables")
		context = flag.String("context", "", "context query (empty = all records)")
		focus   = flag.String("focus", "", "focus query drawn over the context")
		mode    = flag.String("mode", "hist", "hist | lines")
		binning = flag.String("binning", "uniform", "uniform | adaptive")
		bins    = flag.Int("bins", 128, "context histogram bins per axis")
		fbins   = flag.Int("focus-bins", 256, "focus histogram bins per axis")
		gamma   = flag.Float64("gamma", 1, "plot gamma (lower dims sparse bins)")
		outlier = flag.Float64("outliers", 0, "hybrid outlier floor as fraction of peak density (0 = off)")
		width   = flag.Int("width", 1000, "image width")
		height  = flag.Int("height", 560, "image height")
		backend = flag.String("backend", "fastbit", "fastbit | custom")
		out     = flag.String("out", "plot.png", "output PNG path")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	ex, err := core.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	switch *backend {
	case "fastbit":
		ex.SetBackend(fastquery.FastBit)
	case "custom", "scan":
		ex.SetBackend(fastquery.Scan)
	default:
		log.Fatalf("unknown backend %q", *backend)
	}

	opt := core.DefaultPlotOptions()
	opt.ContextBins = *bins
	opt.FocusBins = *fbins
	opt.Gamma = *gamma
	opt.Width = *width
	opt.Height = *height
	opt.OutlierFloor = *outlier
	if *binning == "adaptive" {
		opt.Binning = histogram.Adaptive
	}

	axisVars := splitList(*vars)
	if len(axisVars) < 2 {
		log.Fatalf("need at least 2 variables, got %v", axisVars)
	}

	canvas, err := renderPlot(ex, *mode, *steps, *step, axisVars, *context, *focus, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := canvas.SavePNG(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func renderPlot(ex *core.Explorer, mode, stepsCSV string, step int, vars []string, context, focus string, opt core.PlotOptions) (canvas interface {
	SavePNG(string) error
}, err error) {
	if stepsCSV != "" {
		stepList, err := parseSteps(stepsCSV)
		if err != nil {
			return nil, err
		}
		cond := focus
		if cond == "" {
			cond = context
		}
		return ex.TemporalPlot(stepList, vars, cond, opt)
	}
	if mode == "lines" {
		cond := focus
		if cond == "" {
			cond = context
		}
		return ex.LinePlot(step, vars, cond, 0.35, opt)
	}
	return ex.ContextFocusPlot(step, vars, context, focus, opt)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSteps(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad step %q: %w", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no steps in %q", s)
	}
	return out, nil
}
