// Command qingest streams simulation timesteps into a running qserve
// instance over POST /v1/ingest — the paper's in-transit workflow: data
// is queryable the moment each step commits (scan backend) and upgrades
// to FastBit as the server's background builder publishes each sidecar
// index, all without restarting the service.
//
// The generator is the same deterministic synthetic LWFA run lwfagen
// writes, and ingestion continues from the server's current step count:
// pointing qingest at a dataset seeded with `lwfagen -steps 2` (served
// live) and asking for -steps 5 appends exactly steps 2, 3 and 4 with the
// data the full 5-step run would have produced — provided -seed and the
// shape flags match the original run.
//
// Usage:
//
//	lwfagen -out /tmp/lwfa -steps 2 -particles 50000
//	qserve -data /tmp/lwfa -live -addr :8080 &
//	qingest -url http://127.0.0.1:8080 -steps 5
//	qingest -url http://127.0.0.1:8080 -steps 38 -interval 2s -wait-indexed
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qingest: ")

	var (
		base        = flag.String("url", "", "qserve base URL (required)")
		dataset     = flag.String("dataset", "", "dataset name (default: the only served one)")
		steps       = flag.Int("steps", 38, "total timesteps of the run; ingestion continues from the server's current count up to this")
		dim         = flag.Int("dim", 2, "spatial dimensionality (2 or 3; must match the seed run)")
		particles   = flag.Int("particles", 50000, "approximate background particles per timestep (must match the seed run)")
		beam        = flag.Int("beam", 600, "particles per trapped beam (must match the seed run)")
		seed        = flag.Uint64("seed", 0x5eed, "deterministic seed (must match the seed run)")
		interval    = flag.Duration("interval", 0, "pause between steps, simulating the producing simulation's cadence")
		waitIndexed = flag.Bool("wait-indexed", false, "after the last step, block until the server reports every step indexed")
		quiet       = flag.Bool("q", false, "suppress per-step output")
	)
	flag.Parse()
	if *base == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := sim.DefaultConfig()
	cfg.Steps = *steps
	cfg.Dim = *dim
	cfg.BackgroundPerStep = *particles
	cfg.BeamParticles = *beam
	cfg.Seed = *seed
	run, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cl := &client{base: *base, http: &http.Client{Timeout: 5 * time.Minute}}
	name, have, err := cl.discover(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	if have >= *steps {
		log.Fatalf("dataset %q already has %d steps (target %d); nothing to ingest", name, have, *steps)
	}
	log.Printf("dataset %q at step %d, ingesting through step %d", name, have, *steps-1)

	for t := have; t < *steps; t++ {
		ps, err := run.Step(t)
		if err != nil {
			log.Fatal(err)
		}
		body := serve.IngestBody{Dataset: name}
		cols := ps.Columns()
		for _, v := range sim.Variables {
			body.Columns = append(body.Columns, serve.IngestColumn{Name: v, Float: cols[v]})
		}
		body.Columns = append(body.Columns, serve.IngestColumn{Name: sim.IDVar, Int: ps.ID})
		start := time.Now()
		ack, err := cl.ingest(body)
		if err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
		if ack.Step != t {
			log.Fatalf("server committed step %d, expected %d (was the dataset written concurrently?)", ack.Step, t)
		}
		if !*quiet {
			log.Printf("step %d committed: %d rows, %d bytes, gen %d (%.0fms)",
				ack.Step, ack.Rows, ack.Bytes, ack.Generation,
				float64(time.Since(start))/float64(time.Millisecond))
		}
		if *interval > 0 && t+1 < *steps {
			time.Sleep(*interval)
		}
	}

	if *waitIndexed {
		start := time.Now()
		for {
			n, indexed, err := cl.indexedSteps(name)
			if err != nil {
				log.Fatal(err)
			}
			if indexed == n {
				log.Printf("all %d steps indexed (%.1fs after last commit)", n, time.Since(start).Seconds())
				return
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
}

type client struct {
	base string
	http *http.Client
}

func (c *client) getJSON(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, buf)
	}
	return json.Unmarshal(buf, out)
}

// discover resolves the target dataset and its current step count, and
// checks it is live.
func (c *client) discover(dataset string) (string, int, error) {
	var dss []serve.DatasetInfo
	if err := c.getJSON("/v1/datasets", &dss); err != nil {
		return "", 0, err
	}
	name := dataset
	if name == "" {
		if len(dss) != 1 {
			return "", 0, fmt.Errorf("server has %d datasets; pick one with -dataset", len(dss))
		}
		name = dss[0].Name
	}
	var steps serve.StepsBody
	if err := c.getJSON("/v1/steps?dataset="+url.QueryEscape(name), &steps); err != nil {
		return "", 0, err
	}
	if !steps.Live {
		return "", 0, fmt.Errorf("dataset %q is not live — start qserve with -live", name)
	}
	return name, steps.Steps, nil
}

func (c *client) ingest(body serve.IngestBody) (*serve.IngestResponse, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Post(c.base+"/v1/ingest", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST /v1/ingest: %d: %s", resp.StatusCode, out)
	}
	var ack serve.IngestResponse
	if err := json.Unmarshal(out, &ack); err != nil {
		return nil, err
	}
	return &ack, nil
}

func (c *client) indexedSteps(name string) (steps, indexed int, err error) {
	var body serve.StepsBody
	if err := c.getJSON("/v1/steps?detail=1&dataset="+url.QueryEscape(name), &body); err != nil {
		return 0, 0, err
	}
	for _, d := range body.Detail {
		if d.IndexState == "indexed" {
			indexed++
		}
	}
	return body.Steps, indexed, nil
}
