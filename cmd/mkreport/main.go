// Command mkreport runs a compact version of the full evaluation against
// a dataset and writes a single self-contained HTML report: rendered
// parallel-coordinates figures plus the serial (Figs. 11-13 analogue) and
// scaling (Figs. 14-17 analogue) measurement tables.
//
// Usage:
//
//	mkreport -data data/lwfa -out report.html
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mkreport: ")

	var (
		data  = flag.String("data", "", "dataset directory (required)")
		out   = flag.String("out", "report.html", "output HTML path")
		bins  = flag.Int("bins", 256, "histogram bins for the timing tables")
		nodes = flag.String("title", "", "optional report title override")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	ex, err := core.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	src := ex.Source()
	title := *nodes
	if title == "" {
		title = fmt.Sprintf("Query-driven visual exploration report — %s", *data)
	}
	rep := &report.HTMLReport{
		Title: title,
		Intro: fmt.Sprintf("%d timesteps. Reproduction of Rübel et al., SC 2008: histogram-based "+
			"parallel coordinates over a FastBit-style bitmap index, compared against the "+
			"sequential-scan baseline.", ex.Steps()),
	}

	last := ex.Steps() - 1
	_, pxHi, err := ex.VarRange(last, "px")
	if err != nil {
		log.Fatal(err)
	}
	sel := fmt.Sprintf("px > %g", 0.5*pxHi)

	// Figure: context + focus parallel coordinates.
	canvas, err := ex.ContextFocusPlot(last, []string{"x", "y", "px", "py"}, "", sel, core.DefaultPlotOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep.Sections = append(rep.Sections, report.Section{
		Title: "Beam selection (parallel coordinates, context + focus)",
		Text:  fmt.Sprintf("Focus query %s at t=%d, histogram-based rendering.", sel, last),
		PNG:   encodePNG(canvas),
	})

	// Figure: pseudocolor view.
	canvas, err = ex.ScatterPlot(last, "x", "y", "px", sel, core.DefaultScatterOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep.Sections = append(rep.Sections, report.Section{
		Title: "Pseudocolor particle view",
		Text:  "All particles in gray; the selection colour-mapped by px.",
		PNG:   encodePNG(canvas),
	})

	// Table: conditional histogram timings across selectivities.
	st, err := src.OpenStep(last)
	if err != nil {
		log.Fatal(err)
	}
	condTable := report.NewTable("", "hits", "fastbit_s", "custom_s")
	for _, frac := range []float64{0.9, 0.5, 0.1} {
		cond := &query.Compare{Var: "px", Op: query.GT, Value: frac * pxHi}
		hits, err := st.Count(cond, fastquery.FastBit)
		if err != nil {
			log.Fatal(err)
		}
		fb, err := report.MedianTime(3, func() error {
			_, err := st.Histogram2D(cond, histogram.NewSpec2D("x", "px", *bins, *bins), fastquery.FastBit)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		cu, err := report.MedianTime(3, func() error {
			_, err := st.Histogram2D(cond, histogram.NewSpec2D("x", "px", *bins, *bins), fastquery.Scan)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		condTable.AddRow(fmt.Sprintf("%d", hits), report.Seconds(fb), report.Seconds(cu))
	}
	st.Close()
	rep.Sections = append(rep.Sections, report.Section{
		Title: "Conditional histograms: index vs scan (Fig. 12 analogue)",
		Text:  fmt.Sprintf("2D histograms over (x, px) at %d×%d bins for momentum cuts of varying selectivity.", *bins, *bins),
		Table: condTable,
	})

	// Table: tracking scalability (Fig. 16/17 analogue).
	ids, err := st500IDs(ex, last)
	if err != nil {
		log.Fatal(err)
	}
	trackTable := report.NewTable("", "nodes", "fastbit_s", "custom_s")
	fbResults, err := trackResults(src, ids, fastquery.FastBit)
	if err != nil {
		log.Fatal(err)
	}
	cuResults, err := trackResults(src, ids, fastquery.Scan)
	if err != nil {
		log.Fatal(err)
	}
	nodeCounts := []int{1, 2, 5, 10, 20, 50, 100}
	fbPts := cluster.StrongScaling(fbResults, nodeCounts, nil)
	cuPts := cluster.StrongScaling(cuResults, nodeCounts, nil)
	for i, n := range nodeCounts {
		trackTable.AddRow(fmt.Sprintf("%d", n),
			report.Seconds(fbPts[i].Time), report.Seconds(cuPts[i].Time))
	}
	rep.Sections = append(rep.Sections, report.Section{
		Title: "Parallel particle tracking (Figs. 16/17 analogue)",
		Text: fmt.Sprintf("%d particles tracked across all %d timesteps; completion time of the "+
			"strided static assignment over independent nodes.", len(ids), ex.Steps()),
		Table: trackTable,
	})

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteHTML(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// st500IDs picks ~500 high-momentum identifiers at the given step.
func st500IDs(ex *core.Explorer, step int) ([]int64, error) {
	sel, err := ex.Select(step, "px > -1e300")
	if err != nil {
		return nil, err
	}
	px, err := sel.Values("px")
	if err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), px...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	k := 500
	if k >= len(sorted) {
		k = len(sorted) / 2
	}
	thr := sorted[k]
	beam, err := ex.Select(step, fmt.Sprintf("px > %g", thr))
	if err != nil {
		return nil, err
	}
	return beam.IDs(), nil
}

func trackResults(src *fastquery.Source, ids []int64, backend fastquery.Backend) ([]cluster.Result, error) {
	tasks := make([]cluster.Task, src.Steps())
	for t := 0; t < src.Steps(); t++ {
		t := t
		tasks[t] = cluster.Task{Step: t, Run: func() (uint64, int, error) {
			st, err := src.OpenStep(t)
			if err != nil {
				return 0, 0, err
			}
			defer st.Close()
			if _, err := st.FindIDs(ids, backend); err != nil {
				return 0, 0, err
			}
			return st.IOBytes(), 1, nil
		}}
	}
	return cluster.RunSerial(tasks, cluster.IOModel{})
}

func encodePNG(c *render.Canvas) []byte {
	var buf bytes.Buffer
	if err := c.EncodePNG(&buf); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
