// Command trace selects particles with a compound range query at one
// timestep and traces them across the dataset by identifier — the
// interactive workflow of the paper's Section IV, which replaced
// hours-long IDL scripts with sub-second index queries.
//
// Usage:
//
//	trace -data data/lwfa2d -step 37 -query "px > 8.872e10" -from 10 -to 37
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fastquery"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace: ")

	var (
		data    = flag.String("data", "", "dataset directory (required)")
		step    = flag.Int("step", -1, "selection timestep (-1 = last)")
		q       = flag.String("query", "", "selection query (required)")
		refine  = flag.String("refine", "", "optional refinement ANDed onto the selection")
		from    = flag.Int("from", 0, "first timestep to trace")
		to      = flag.Int("to", -1, "last timestep to trace (-1 = last)")
		backend = flag.String("backend", "fastbit", "fastbit | custom")
		workers = flag.Int("workers", 0, "parallel workers for tracing (0 = serial)")
		maxShow = flag.Int("show", 10, "how many tracks to print")
		csvPath = flag.String("csv", "", "write full trajectories to this CSV file")
	)
	flag.Parse()
	if *data == "" || *q == "" {
		flag.Usage()
		os.Exit(2)
	}

	ex, err := core.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	if *backend == "custom" || *backend == "scan" {
		ex.SetBackend(fastquery.Scan)
	}
	selStep := *step
	if selStep < 0 {
		selStep = ex.Steps() - 1
	}
	end := *to
	if end < 0 {
		end = ex.Steps() - 1
	}

	start := time.Now()
	sel, err := ex.Select(selStep, *q)
	if err != nil {
		log.Fatal(err)
	}
	if *refine != "" {
		if sel, err = sel.Refine(*refine); err != nil {
			log.Fatal(err)
		}
	}
	selDur := time.Since(start)
	fmt.Printf("selection %q at t=%d: %d particles (%.3fs)\n", sel.Query(), selStep, sel.Count(), selDur.Seconds())
	if sel.Count() == 0 {
		return
	}

	start = time.Now()
	tracks, err := ex.TrackIDs(sel.IDs(), *from, end, core.TrackOptions{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	traceDur := time.Since(start)
	fmt.Printf("traced %d particles over t=[%d,%d] (%.3fs)\n", len(tracks), *from, end, traceDur.Seconds())

	for i, tr := range tracks {
		if i >= *maxShow {
			fmt.Printf("... and %d more\n", len(tracks)-i)
			break
		}
		first, last := tr.Steps[0], tr.Steps[tr.Len()-1]
		fmt.Printf("id %-10d steps %d..%d  px %.3e -> %.3e  x %.4e -> %.4e\n",
			tr.ID, first, last, tr.Px[0], tr.Px[tr.Len()-1], tr.X[0], tr.X[tr.Len()-1])
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.WriteTracksCSV(f, tracks); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}
