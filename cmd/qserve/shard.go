// Shard-worker role: instead of the HTTP query surface, the process
// serves plan fragments over net/rpc — the executor half of the
// planner/executor split. Frontends (qserve -role frontend) scatter
// row-range fragments here and merge the mergeable partials.
//
//	qserve -role shard -data /tmp/lwfa -rpc-addr :7071
//	qserve -role shard -data /tmp/lwfa -rpc-addr :7072
//	qserve -role frontend -data /tmp/lwfa -shards 127.0.0.1:7071,127.0.0.1:7072
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
)

// shardOptions is the shard role's wiring, carved out of the main flag
// set.
type shardOptions struct {
	rpcAddr      string
	adminAddr    string
	fragCache    int
	concurrency  int
	queueDepth   int
	queueTimeout time.Duration
	limitMode    string
	slo          time.Duration
	maxConc      int
}

// shardGroups splits a flat worker address list into per-shard replica
// groups of size replicas, in order: with -replicas 2, addresses
// a,b,c,d become shard 0 = {a,b}, shard 1 = {c,d}.
func shardGroups(addrs []string, replicas int) ([][]string, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("replicas must be >= 1, got %d", replicas)
	}
	if len(addrs) == 0 || len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("%d addresses do not divide into replica groups of %d", len(addrs), replicas)
	}
	groups := make([][]string, 0, len(addrs)/replicas)
	for i := 0; i < len(addrs); i += replicas {
		groups = append(groups, addrs[i:i+replicas])
	}
	return groups, nil
}

// shardAdmit adapts a serve.Gate into the shard service's admission hook,
// so fragment RPCs queue and shed under the same adaptive limiter the
// HTTP layer uses. Cached fragments bypass it (the service peeks first).
func shardAdmit(gate *serve.Gate) shard.AdmitFunc {
	return func(ctx context.Context) (func(), error) {
		if err := gate.Acquire(ctx, serve.ClassDrill); err != nil {
			return nil, err
		}
		held := time.Now()
		var once sync.Once
		return func() {
			once.Do(func() { gate.Release(time.Since(held)) })
		}, nil
	}
}

// runShard serves the shard-worker role until SIGTERM/SIGINT.
func runShard(logger *obs.Logger, fatal func(string, ...any), datas dataFlags, opt shardOptions) {
	ex := shard.NewExecutor(opt.fragCache)
	defer ex.Close()
	dir := ""
	for _, spec := range datas {
		name, d := splitDataSpec(spec)
		if err := ex.AddDataset(name, d); err != nil {
			fatal("add dataset", "name", name, "dir", d, "err", err)
		}
		dir = d
		logger.Info("shard dataset", "name", name, "dir", d)
	}

	mode, _ := serve.ParseLimitMode(opt.limitMode) // validated by main
	qd := opt.queueDepth
	if qd < 0 {
		qd = 2 * opt.concurrency
	}
	gate := serve.NewGate(serve.GateConfig{
		Limit:        opt.concurrency,
		MaxLimit:     opt.maxConc,
		QueueDepth:   qd,
		QueueTimeout: opt.queueTimeout,
		Mode:         mode,
		SLO:          opt.slo,
	})

	srv, err := shard.NewServer(shard.NewService(ex, shardAdmit(gate)), dir)
	if err != nil {
		fatal("shard server", "err", err)
	}
	l, err := net.Listen("tcp", opt.rpcAddr)
	if err != nil {
		fatal("rpc listen", "addr", opt.rpcAddr, "err", err)
	}
	fmt.Printf("qserve: shard rpc on %s\n", l.Addr())
	srv.Serve(l)

	if opt.adminAddr != "" {
		adm := http.NewServeMux()
		adm.Handle("/metrics", obs.Handler(obs.Default()))
		adm.HandleFunc("/debug/pprof/", pprof.Index)
		adm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		aln, err := net.Listen("tcp", opt.adminAddr)
		if err != nil {
			fatal("admin listen", "addr", opt.adminAddr, "err", err)
		}
		fmt.Printf("qserve: admin on %s\n", aln.Addr())
		go func() {
			asrv := &http.Server{Handler: adm, ReadHeaderTimeout: 10 * time.Second}
			if err := asrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				logger.Error("admin server", "err", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shard shutting down")
	srv.Close()
}
