// Command qserve is the interactive query service: it serves one or more
// datasets over an HTTP/JSON API — compound range queries and conditional
// histograms at arbitrary resolution — with a canonical-plan result cache,
// request coalescing and admission control.
//
// Usage:
//
//	lwfagen -out /tmp/lwfa -steps 30 -particles 200000
//	qserve -data /tmp/lwfa -addr :8080
//	qserve -data beam=/tmp/lwfa -data run2=/data/run2
//
// Endpoints:
//
//	GET /v1/datasets                          served datasets
//	GET /v1/steps?dataset=D&detail=1          timestep metadata
//	GET /v1/vars?dataset=D&step=T             variables with value ranges
//	GET /v1/query?q=...&step=T&backend=B      selection summary
//	GET /v1/hist1d?var=V&bins=N&q=...         conditional 1D histogram
//	GET /v1/hist2d?x=X&y=Y&xbins=N&ybins=M    conditional 2D histogram
//	GET /v1/stats                             cache/admission counters
//	GET /healthz                              liveness (always 200 while up)
//	GET /readyz                               readiness (503 once draining)
//
// On SIGTERM/SIGINT the server flips /readyz to 503, drains in-flight
// requests (deadline covering -exec-timeout), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// dataFlags collects repeated -data name=dir (or plain dir) flags.
type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qserve: ")

	var datas dataFlags
	flag.Var(&datas, "data", "dataset to serve, as dir or name=dir (repeatable)")
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		cacheEntries = flag.Int("cache-entries", 256, "result cache size in entries (0 disables storage)")
		concurrency  = flag.Int("concurrency", 8, "max requests doing backend work at once")
		queueDepth   = flag.Int("queue", -1, "admission queue depth (-1 = 2x concurrency, 0 = no queue)")
		queueWait    = flag.Duration("queue-timeout", 2*time.Second, "max time a request waits for admission")
		execTimeout  = flag.Duration("exec-timeout", 30*time.Second, "per-request execution deadline, answered 504 (0 = no deadline)")
	)
	flag.Parse()
	if len(datas) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := serve.Config{
		CacheEntries: *cacheEntries,
		Concurrency:  *concurrency,
		QueueTimeout: *queueWait,
		ExecTimeout:  *execTimeout,
	}
	// Flag semantics: 0 disables the deadline; Config expresses that as a
	// negative value (its own zero means "use the default").
	if *execTimeout <= 0 {
		cfg.ExecTimeout = -1
	}
	// Flag semantics differ from Config zero-value semantics: translate
	// "0 = off" into Config's "negative = off".
	if *cacheEntries <= 0 {
		cfg.CacheEntries = -1
	}
	switch {
	case *queueDepth > 0:
		cfg.QueueDepth = *queueDepth
	case *queueDepth == 0:
		cfg.QueueDepth = -1
	}
	s := serve.New(cfg)
	defer s.Close()
	for _, spec := range datas {
		name, dir := spec, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, dir = spec[:i], spec[i+1:]
		} else {
			name = filepath.Base(filepath.Clean(dir))
		}
		if err := s.AddDataset(name, dir); err != nil {
			log.Fatal(err)
		}
		log.Printf("serving dataset %q from %s", name, dir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The actual address matters with port 0; print it where scripts and
	// tests can parse it.
	fmt.Printf("qserve: listening on %s\n", ln.Addr())

	// Slow-client protection: a reader that trickles its request header or
	// never drains its response must not pin a connection (and its handler)
	// forever. WriteTimeout must cover the execution deadline, or the server
	// would cut off legitimately slow histograms before their 504 fires.
	writeTimeout := cfg.ExecTimeout + 30*time.Second
	if cfg.ExecTimeout < 0 {
		writeTimeout = 0 // deadline disabled: don't reintroduce one here
	}
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case <-sig:
		// Graceful drain: flip /readyz to 503 so load balancers stop
		// routing here, then let in-flight requests finish. The drain
		// deadline must exceed the execution deadline so no request is
		// killed by shutdown that would have completed within its budget.
		log.Printf("draining")
		s.SetDraining(true)
		drain := 10 * time.Second
		if cfg.ExecTimeout > 0 && cfg.ExecTimeout+5*time.Second > drain {
			drain = cfg.ExecTimeout + 5*time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		log.Printf("drained, exiting")
	}
}
