// Command qserve is the interactive query service: it serves one or more
// datasets over an HTTP/JSON API — compound range queries and conditional
// histograms at arbitrary resolution — with a canonical-plan result cache,
// request coalescing and admission control.
//
// Usage:
//
//	lwfagen -out /tmp/lwfa -steps 30 -particles 200000
//	qserve -data /tmp/lwfa -addr :8080
//	qserve -data beam=/tmp/lwfa -data run2=/data/run2
//	qserve -data /tmp/lwfa -admin-addr :9090 -workers host1:7070,host2:7070
//	qserve -data /tmp/lwfa -live -ingest-workers 2
//
// Endpoints:
//
//	GET /v1/datasets                          served datasets
//	GET /v1/steps?dataset=D&detail=1          timestep metadata
//	GET /v1/vars?dataset=D&step=T             variables with value ranges
//	GET /v1/query?q=...&step=T&backend=B      selection summary
//	GET /v1/hist1d?var=V&bins=N&q=...         conditional 1D histogram
//	GET /v1/hist2d?x=X&y=Y&xbins=N&ybins=M    conditional 2D histogram
//	GET /v1/sweep2d?x=X&y=Y&steps=A-B&q=...   per-step histogram sweep
//	POST /v1/ingest                           append one timestep (-live only)
//	GET /v1/stats                             counters, build info, metrics
//	GET /metrics                              Prometheus text exposition
//	GET /v1/debug/slow                        recent over-threshold requests
//	GET /healthz                              liveness (always 200 while up)
//	GET /readyz                               readiness (503 once draining)
//
// Every request carries an X-Trace-Id header; add ?debug=trace to have
// the per-stage span tree echoed in the response body, or ?debug=explain
// for a per-fragment execution profile (rows, bytes, index work, cache
// disposition, budgets) whose fragment costs sum exactly to the query
// totals. ?explain=only returns the profile instead of the answer.
//
// With -admin-addr a second listener serves the operational surface only:
// /metrics, /v1/debug/slow, and net/http/pprof under /debug/pprof/ —
// keeping profilers and scrapers off the query port. On a scatter
// frontend /metrics federates every shard worker's registry into one
// exposition (worker series labelled shard="N"); ?exemplars=1 attaches
// trace-ID exemplars to latency buckets.
//
// The server grades every request against -slo and exports the SLO
// burn rate over two windows (-burn-fast / -burn-slow); when both
// cross -burn-threshold, a breach fires and — with -profile-dir set —
// the flight recorder spools CPU/heap profiles plus the slow-query
// ring into a bounded capture directory for post-hoc analysis.
//
// On SIGTERM/SIGINT the server flips /readyz to 503, drains in-flight
// requests (deadline covering -exec-timeout), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/fastbit"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
)

// dataFlags collects repeated -data name=dir (or plain dir) flags.
type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }

func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

// splitDataSpec resolves one -data value into (name, dir).
func splitDataSpec(spec string) (name, dir string) {
	if i := strings.IndexByte(spec, '='); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return filepath.Base(filepath.Clean(spec)), spec
}

func main() {
	logger := obs.NewLogger(os.Stderr, "qserve")
	fatal := func(msg string, kv ...any) {
		logger.Error(msg, kv...)
		os.Exit(1)
	}

	var datas dataFlags
	flag.Var(&datas, "data", "dataset to serve, as dir or name=dir (repeatable)")
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:0 picks a free port)")
		adminAddr    = flag.String("admin-addr", "", "admin listener for /metrics, pprof and /v1/debug/slow (off when empty)")
		cacheEntries = flag.Int("cache-entries", 256, "result cache size in entries (0 disables storage)")
		concurrency  = flag.Int("concurrency", 8, "max requests doing backend work at once")
		queueDepth   = flag.Int("queue", -1, "admission queue depth (-1 = 2x concurrency, 0 = no queue)")
		queueWait    = flag.Duration("queue-timeout", 2*time.Second, "max time a request waits for admission")
		execTimeout  = flag.Duration("exec-timeout", 30*time.Second, "per-request execution deadline, answered 504 (0 = no deadline)")
		slowThresh   = flag.Duration("slow-threshold", 250*time.Millisecond, "latency beyond which a request enters the slow-query log (0 = off)")
		limitMode    = flag.String("limit-mode", "aimd", "admission limiter: fixed | aimd | gradient")
		slo          = flag.Duration("slo", 250*time.Millisecond, "latency SLO the adaptive limiter steers p95 toward")
		maxConc      = flag.Int("max-concurrency", 0, "cap on adaptive limit growth (0 = 8x concurrency)")
		brownout     = flag.Bool("brownout", true, "answer eligible histograms from a degraded path under sustained overload")
		workers      = flag.String("workers", "", "comma-separated cluster worker addresses for /v1/sweep2d")
		obsEnabled   = flag.Bool("obs", true, "enable tracing and latency histograms (counters stay on)")
		live         = flag.Bool("live", false, "serve datasets live: accept POST /v1/ingest and build indexes in the background")
		ingWorkers   = flag.Int("ingest-workers", 1, "background index-builder pool size per live dataset")
		catalogPoll  = flag.Duration("catalog-poll", 500*time.Millisecond, "how often a live dataset re-reads its catalog for external commits (0 disables)")
		indexBins    = flag.Int("index-bins", 256, "bitmap index bins per variable for live-built indexes")

		// Sharded serving roles. A shard worker evaluates plan fragments
		// over RPC; a frontend scatters fragments across shard replica
		// groups and merges the partials; local (default) is the one-shard
		// case of the same planner path, in-process.
		role      = flag.String("role", "local", "serving role: local | frontend | shard")
		rpcAddr   = flag.String("rpc-addr", "127.0.0.1:7071", "shard role: fragment RPC listen address (host:0 picks a free port)")
		shards    = flag.String("shards", "", "frontend role: comma-separated shard worker addresses; consecutive -replicas addresses form one shard's replica group")
		replicas  = flag.Int("replicas", 1, "frontend role: replica addresses per shard in -shards")
		hedge     = flag.Duration("hedge", 0, "frontend role: hedged-dispatch stagger across a shard's replicas (0 = first-healthy only)")
		fragCache = flag.Int("frag-cache", 1024, "shard role: fragment result cache entries (0 disables)")

		// SLO burn-rate monitoring and breach-triggered profile capture.
		burnBudget    = flag.Float64("burn-budget", 0.05, "tolerated bad-request fraction (error budget) for the SLO burn monitor")
		burnFast      = flag.Duration("burn-fast", 5*time.Minute, "fast burn-rate window")
		burnSlow      = flag.Duration("burn-slow", time.Hour, "slow burn-rate window")
		burnThreshold = flag.Float64("burn-threshold", 1, "burn rate both windows must reach to fire a breach")
		burnCooldown  = flag.Duration("burn-cooldown", 0, "minimum gap between breach firings (0 = slow window)")
		profileDir    = flag.String("profile-dir", "", "flight-recorder spool: each SLO breach captures pprof profiles + the slow-query ring here (off when empty)")
		profileCaps   = flag.Int("profile-captures", 8, "flight-recorder spool bound (capture directories kept)")
		profileCPU    = flag.Duration("profile-cpu", 2*time.Second, "CPU-profile sampling window per flight-recorder capture")

		// Analysis sessions (server-side selections).
		sessionTTL      = flag.Duration("session-ttl", 15*time.Minute, "evict analysis sessions idle longer than this (0 = never)")
		sessionMax      = flag.Int("session-max", 64, "max live analysis sessions, LRU-evicted (0 = unbounded)")
		sessionMaxBytes = flag.Int64("session-max-bytes", 64<<20, "max bytes of stored selections across sessions (0 = unbounded)")

		// Resilience control plane (frontend role).
		breaker     = flag.Bool("breaker", true, "frontend role: per-replica circuit breakers on shard RPCs")
		retryBudget = flag.Float64("retry-budget", 0.1, "frontend role: global retry budget refill ratio — retry tokens granted per successful call (0 disables)")
		retryBurst  = flag.Int("retry-budget-burst", 20, "frontend role: retry budget bucket size")
		budgetSlack = flag.Duration("budget-slack", shard.DefaultBudgetSlack, "frontend role: deadline headroom reserved per fragment dispatch (negative disables deadline budgets)")
	)
	flag.Parse()
	if len(datas) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	obs.SetEnabled(*obsEnabled)
	if _, err := serve.ParseLimitMode(*limitMode); err != nil {
		fatal("bad -limit-mode", "mode", *limitMode, "err", err)
	}
	switch *role {
	case "local", "frontend", "shard":
	default:
		fatal("bad -role", "role", *role, "want", "local | frontend | shard")
	}
	// Live ingestion mutates the catalog in one process; shard workers and
	// frontends share a static dataset directory (the parallel-filesystem
	// model), so the roles are mutually exclusive for now.
	if *role != "local" && *live {
		fatal("-live requires -role local", "role", *role)
	}
	if *role != "frontend" && *shards != "" {
		fatal("-shards requires -role frontend", "role", *role)
	}
	if *role == "shard" {
		runShard(logger, fatal, datas, shardOptions{
			rpcAddr:      *rpcAddr,
			adminAddr:    *adminAddr,
			fragCache:    *fragCache,
			concurrency:  *concurrency,
			queueDepth:   *queueDepth,
			queueTimeout: *queueWait,
			limitMode:    *limitMode,
			slo:          *slo,
			maxConc:      *maxConc,
		})
		return
	}

	cfg := serve.Config{
		CacheEntries:   *cacheEntries,
		Concurrency:    *concurrency,
		QueueTimeout:   *queueWait,
		ExecTimeout:    *execTimeout,
		SlowThreshold:  *slowThresh,
		Logger:         logger.With("serve"),
		LimitMode:      *limitMode,
		SLO:            *slo,
		MaxConcurrency: *maxConc,
		Brownout:       *brownout,

		BurnBudget:      *burnBudget,
		BurnFast:        *burnFast,
		BurnSlow:        *burnSlow,
		BurnThreshold:   *burnThreshold,
		BurnCooldown:    *burnCooldown,
		ProfileDir:      *profileDir,
		ProfileCaptures: *profileCaps,
		ProfileCPU:      *profileCPU,

		SessionTTL:      *sessionTTL,
		SessionMax:      *sessionMax,
		SessionMaxBytes: *sessionMaxBytes,
	}
	// Flag semantics: 0 disables a session bound; Config expresses that as
	// a negative value (its zero means "use the default").
	if *sessionTTL <= 0 {
		cfg.SessionTTL = -1
	}
	if *sessionMax <= 0 {
		cfg.SessionMax = -1
	}
	if *sessionMaxBytes <= 0 {
		cfg.SessionMaxBytes = -1
	}
	// Flag semantics: 0 disables the deadline; Config expresses that as a
	// negative value (its own zero means "use the default").
	if *execTimeout <= 0 {
		cfg.ExecTimeout = -1
	}
	if *slowThresh <= 0 {
		cfg.SlowThreshold = -1
	}
	// Flag semantics differ from Config zero-value semantics: translate
	// "0 = off" into Config's "negative = off".
	if *cacheEntries <= 0 {
		cfg.CacheEntries = -1
	}
	switch {
	case *queueDepth > 0:
		cfg.QueueDepth = *queueDepth
	case *queueDepth == 0:
		cfg.QueueDepth = -1
	}
	s := serve.New(cfg)
	defer s.Close()
	for _, spec := range datas {
		name, dir := splitDataSpec(spec)
		if *live {
			lc := serve.LiveConfig{
				IngestWorkers: *ingWorkers,
				CatalogPoll:   *catalogPoll,
				Index:         fastbit.IndexOptions{Bins: *indexBins},
			}
			if *catalogPoll <= 0 {
				lc.CatalogPoll = -1
			}
			if err := s.AddLiveDataset(name, dir, lc); err != nil {
				fatal("add live dataset", "name", name, "dir", dir, "err", err)
			}
			logger.Info("serving dataset live", "name", name, "dir", dir)
			continue
		}
		if err := s.AddDataset(name, dir); err != nil {
			fatal("add dataset", "name", name, "dir", dir, "err", err)
		}
		logger.Info("serving dataset", "name", name, "dir", dir)
	}
	if *workers != "" {
		addrs := strings.Split(*workers, ",")
		if err := s.SetWorkers(addrs, cluster.DefaultPoolConfig()); err != nil {
			fatal("connect workers", "workers", *workers, "err", err)
		}
		logger.Info("sweep workers connected", "count", len(addrs))
	}
	if *role == "frontend" {
		if *shards == "" {
			fatal("-role frontend requires -shards")
		}
		groups, err := shardGroups(strings.Split(*shards, ","), *replicas)
		if err != nil {
			fatal("bad -shards", "shards", *shards, "replicas", *replicas, "err", err)
		}
		pc := cluster.DefaultPoolConfig()
		if *breaker {
			pc.Breaker = cluster.DefaultBreakerConfig()
		}
		pc.RetryBudgetRatio = *retryBudget
		pc.RetryBudgetBurst = *retryBurst
		c, err := shard.DialShards(groups, pc, *hedge)
		if err != nil {
			fatal("dial shards", "shards", *shards, "err", err)
		}
		c.SetBudgetSlack(*budgetSlack)
		s.SetShardClient(c)
		logger.Info("shard fleet connected",
			"shards", len(groups), "replicas", *replicas, "hedge", hedge.String(),
			"breakers", *breaker, "retry_budget", *retryBudget, "budget_slack", budgetSlack.String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	// The actual address matters with port 0; print it where scripts and
	// tests can parse it.
	fmt.Printf("qserve: listening on %s\n", ln.Addr())

	// The admin surface gets its own mux (and listener): pprof handlers
	// must never be reachable from the query port, and a scrape storm on
	// /metrics must not compete with queries for the accept queue.
	if *adminAddr != "" {
		adm := http.NewServeMux()
		adm.Handle("/metrics", s.MetricsHandler())
		adm.Handle("/v1/debug/slow", s.SlowLog().Handler())
		adm.HandleFunc("/debug/pprof/", pprof.Index)
		adm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		adm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		adm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		adm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatal("admin listen", "addr", *adminAddr, "err", err)
		}
		fmt.Printf("qserve: admin on %s\n", aln.Addr())
		go func() {
			asrv := &http.Server{Handler: adm, ReadHeaderTimeout: 10 * time.Second}
			if err := asrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				logger.Error("admin server", "err", err)
			}
		}()
	}

	// Slow-client protection: a reader that trickles its request header or
	// never drains its response must not pin a connection (and its handler)
	// forever. WriteTimeout must cover the execution deadline, or the server
	// would cut off legitimately slow histograms before their 504 fires.
	writeTimeout := cfg.ExecTimeout + 30*time.Second
	if cfg.ExecTimeout < 0 {
		writeTimeout = 0 // deadline disabled: don't reintroduce one here
	}
	srv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal("server exited", "err", err)
	case <-sig:
		// Graceful drain: flip /readyz to 503 so load balancers stop
		// routing here, then let in-flight requests finish. The drain
		// deadline must exceed the execution deadline so no request is
		// killed by shutdown that would have completed within its budget.
		logger.Info("draining")
		s.SetDraining(true)
		drain := 10 * time.Second
		if cfg.ExecTimeout > 0 && cfg.ExecTimeout+5*time.Second > drain {
			drain = cfg.ExecTimeout + 5*time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		logger.Info("drained, exiting")
	}
}
