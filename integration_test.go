package repro

// End-to-end integration tests: drive the whole stack the way a user
// would — generate a dataset, open it, query it through both backends,
// render every plot type, track particles, and run the command-line tools
// as real subprocesses.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/sim"
)

// integrationDataset reuses the benchmark dataset generator.
func integrationDataset(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := sim.DefaultConfig()
	cfg.Steps = 8
	cfg.BackgroundPerStep = 8000
	cfg.BeamParticles = 120
	if _, err := sim.WriteDataset(dir, cfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 64},
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestEndToEndWorkflow(t *testing.T) {
	dir := integrationDataset(t)
	ex, err := core.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ex.Steps() - 1

	// 1. Interactive selection with both backends, identical results.
	const q = "px > 5e10 && y > -1e-3"
	fbSel, err := ex.Select(last, q)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetBackend(fastquery.Scan)
	scSel, err := ex.Select(last, q)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetBackend(fastquery.FastBit)
	if fbSel.Count() == 0 || fbSel.Count() != scSel.Count() {
		t.Fatalf("selection counts: fastbit %d, scan %d", fbSel.Count(), scSel.Count())
	}

	// 2. Conditional histograms at two resolutions conserve the selection.
	for _, bins := range []int{32, 512} {
		h, err := ex.Histogram2D(last, q, histogram.NewSpec2D("x", "px", bins, bins))
		if err != nil {
			t.Fatal(err)
		}
		if h.Total() != uint64(fbSel.Count()) {
			t.Fatalf("bins=%d: histogram total %d != selection %d", bins, h.Total(), fbSel.Count())
		}
	}

	// 3. Track the beam through the full run and verify world lines only
	// strengthen forward in x.
	tracks, err := ex.TrackIDs(fbSel.IDs(), 0, last, core.TrackOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != fbSel.Count() {
		t.Fatalf("tracked %d of %d", len(tracks), fbSel.Count())
	}

	// 4. Every plot type renders and saves.
	outDir := t.TempDir()
	plots := map[string]func() error{
		"pcoords.png": func() error {
			c, err := ex.ContextFocusPlot(last, []string{"x", "y", "px"}, "", q, core.DefaultPlotOptions())
			if err != nil {
				return err
			}
			return c.SavePNG(filepath.Join(outDir, "pcoords.png"))
		},
		"temporal.png": func() error {
			c, err := ex.TemporalPlot([]int{4, 6, 7}, []string{"x", "px"}, "px > 1e9", core.DefaultPlotOptions())
			if err != nil {
				return err
			}
			return c.SavePNG(filepath.Join(outDir, "temporal.png"))
		},
		"scatter.png": func() error {
			c, err := ex.ScatterPlot(last, "x", "y", "px", q, core.DefaultScatterOptions())
			if err != nil {
				return err
			}
			return c.SavePNG(filepath.Join(outDir, "scatter.png"))
		},
		"traces.png": func() error {
			sub := tracks
			if len(sub) > 10 {
				sub = sub[:10]
			}
			c, err := ex.TracePlot(sub, last, core.ColorByPx, core.DefaultScatterOptions())
			if err != nil {
				return err
			}
			return c.SavePNG(filepath.Join(outDir, "traces.png"))
		},
	}
	for name, fn := range plots {
		if err := fn(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st, err := os.Stat(filepath.Join(outDir, name))
		if err != nil || st.Size() == 0 {
			t.Fatalf("%s missing or empty: %v", name, err)
		}
	}

	// 5. Pipeline with contracts over the same dataset.
	src, err := fastquery.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sel := &pipeline.SelectionStage{Query: query.MustParse(q), WantIDs: true}
	hist := &pipeline.HistogramStage{Specs: []histogram.Spec2D{histogram.NewSpec2D("x", "px", 16, 16)}}
	pl, err := pipeline.New(src, fastquery.FastBit, sel, hist)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Run(last); err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) != fbSel.Count() {
		t.Fatalf("pipeline selected %d, explorer %d", len(sel.IDs), fbSel.Count())
	}
}

// TestCommandLineTools builds and runs the real executables end to end.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"lwfagen", "indexgen", "dsinfo", "pcplot", "trace", "beamstats", "histbench", "scalebench", "figures", "mkreport"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	data := filepath.Join(t.TempDir(), "data")

	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	out := run("lwfagen", "-out", data, "-steps", "5", "-particles", "3000", "-beam", "50", "-q")
	if !strings.Contains(out, "5 steps") {
		t.Fatalf("lwfagen output: %s", out)
	}

	png := filepath.Join(t.TempDir(), "plot.png")
	run("pcplot", "-data", data, "-step", "4", "-vars", "x,y,px", "-focus", "px > 1e10", "-out", png)
	if st, err := os.Stat(png); err != nil || st.Size() == 0 {
		t.Fatalf("pcplot produced no image: %v", err)
	}
	run("pcplot", "-data", data, "-steps", "2,3,4", "-vars", "x,px", "-focus", "px > 1e9",
		"-binning", "adaptive", "-out", png)
	run("pcplot", "-data", data, "-step", "4", "-vars", "x,px", "-mode", "lines",
		"-focus", "px > 1e10", "-out", png)

	out = run("trace", "-data", data, "-query", "px > 1e10", "-show", "2")
	if !strings.Contains(out, "traced") {
		t.Fatalf("trace output: %s", out)
	}
	out = run("trace", "-data", data, "-query", "px > 1e10", "-backend", "custom", "-show", "1")
	if !strings.Contains(out, "traced") {
		t.Fatalf("trace custom output: %s", out)
	}

	out = run("histbench", "-data", data, "-step", "3", "-exp", "fig13", "-runs", "1")
	if !strings.Contains(out, "Fig 13") {
		t.Fatalf("histbench output: %s", out)
	}
	out = run("histbench", "-data", data, "-step", "3", "-exp", "fig11", "-runs", "1", "-csv")
	if !strings.Contains(out, "fastbit_regular_s") {
		t.Fatalf("histbench csv output: %s", out)
	}

	out = run("scalebench", "-data", data, "-exp", "all", "-nodes", "1,2,5", "-bins", "64", "-track-hits", "20")
	for _, want := range []string{"Fig 14", "Fig 15", "Fig 16", "Fig 17"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scalebench output missing %s:\n%s", want, out)
		}
	}
	out = run("scalebench", "-data", data, "-exp", "track", "-nodes", "1,2", "-assign", "blocked", "-csv")
	if !strings.Contains(out, "nodes,") {
		t.Fatalf("scalebench csv output: %s", out)
	}

	// indexgen: regenerate indexes from scratch for a dataset written
	// without them.
	data2 := filepath.Join(t.TempDir(), "noidx")
	run("lwfagen", "-out", data2, "-steps", "3", "-particles", "1500", "-beam", "30", "-skip-index", "-q")
	out = run("indexgen", "-data", data2, "-bins", "32")
	if !strings.Contains(out, "done") {
		t.Fatalf("indexgen output: %s", out)
	}
	out = run("dsinfo", "-data", data2)
	if !strings.Contains(out, "total:") || !strings.Contains(out, "index_mb") {
		t.Fatalf("dsinfo output: %s", out)
	}
	out = run("trace", "-data", data2, "-query", "px > 1e9", "-show", "1")
	if !strings.Contains(out, "traced") {
		t.Fatalf("trace after indexgen: %s", out)
	}

	// beamstats with CSV trajectory export via trace.
	out = run("beamstats", "-data", data, "-query", "px > 1e10", "-csv")
	if !strings.Contains(out, "mean_px") {
		t.Fatalf("beamstats output: %s", out)
	}
	csvPath := filepath.Join(t.TempDir(), "tracks.csv")
	run("trace", "-data", data, "-query", "px > 1e10", "-show", "1", "-csv", csvPath)
	if st, err := os.Stat(csvPath); err != nil || st.Size() == 0 {
		t.Fatalf("trace -csv produced nothing: %v", err)
	}

	// figures gallery.
	figDir := filepath.Join(t.TempDir(), "figs")
	out = run("figures", "-data", data, "-out", figDir)
	matches, err := filepath.Glob(filepath.Join(figDir, "*.png"))
	if err != nil || len(matches) < 8 {
		t.Fatalf("figures produced %d PNGs: %v\n%s", len(matches), err, out)
	}

	// mkreport HTML.
	htmlPath := filepath.Join(t.TempDir(), "report.html")
	run("mkreport", "-data", data, "-out", htmlPath, "-bins", "64")
	html, err := os.ReadFile(htmlPath)
	if err != nil || !strings.Contains(string(html), "data:image/png;base64,") {
		t.Fatalf("mkreport output invalid: %v", err)
	}
}

// TestServeDrainOnSIGTERM checks the graceful-shutdown contract as an
// operator sees it: SIGTERM mid-load flips readiness, lets in-flight
// requests finish, and exits 0 — never a crash or a hung process.
func TestServeDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := t.TempDir()
	cmd := exec.Command("go", "build", "-o", filepath.Join(bin, "qserve"), "./cmd/qserve")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build qserve: %v\n%s", err, out)
	}
	data := integrationDataset(t)

	srv := exec.Command(filepath.Join(bin, "qserve"), "-data", "lwfa="+data, "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill() //nolint:errcheck // belt and braces if the drain hangs

	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "qserve: listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatalf("qserve never announced its address: %v", sc.Err())
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Load the server from several goroutines, then SIGTERM mid-flight.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := "/v1/hist2d?x=x&y=px&xbins=64&ybins=64&q=px%20%3E%200"
				if i%2 == 1 {
					path = "/v1/query?q=px%20%3E%201e10"
				}
				resp, err := client.Get(base + path)
				if err != nil {
					return // server closed its listener: drain has begun
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				// In-flight and pre-drain requests must succeed; shedding
				// statuses are acceptable under load, 5xx are not.
				if resp.StatusCode != http.StatusOK &&
					resp.StatusCode != http.StatusTooManyRequests &&
					resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("GET %s: status %d", path, resp.StatusCode)
					return
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond) // let the load get going
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("qserve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("qserve did not exit within 60s of SIGTERM")
	}
	close(stop)
	wg.Wait()
}

// TestQueryService drives the HTTP serving layer end to end: qserve as a
// real subprocess, a drill-down over HTTP with both backends agreeing,
// cache hits on repeat, and qload producing BENCH_serve.json.
func TestQueryService(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := t.TempDir()
	for _, tool := range []string{"qserve", "qload"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	data := integrationDataset(t)

	srv := exec.Command(filepath.Join(bin, "qserve"), "-data", "lwfa="+data, "-addr", "127.0.0.1:0")
	stdout, err := srv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stderr = os.Stderr
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill() //nolint:errcheck // test teardown
		srv.Wait()         //nolint:errcheck
	}()

	// qserve prints "qserve: listening on <addr>" once the socket is open.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "qserve: listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatalf("qserve never announced its address: %v", sc.Err())
	}
	client := &http.Client{Timeout: 30 * time.Second}
	get := func(path string, out any) {
		t.Helper()
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}

	// Drill down: coarse cut, then refined compound cut, on both backends.
	type queryBody struct {
		Matches uint64 `json:"matches"`
		Backend string `json:"backend"`
		Outcome string `json:"outcome"`
	}
	type hist2dBody struct {
		Counts []uint64 `json:"counts"` // row-major
		Total  uint64   `json:"total"`
	}
	total := func(h hist2dBody) uint64 {
		var n uint64
		for _, c := range h.Counts {
			n += c
		}
		return n
	}
	for _, q := range []string{"px > 1e10", "px > 5e10 && x > 0"} {
		qe := strings.ReplaceAll(q, " ", "%20")
		qe = strings.ReplaceAll(qe, ">", "%3E")
		qe = strings.ReplaceAll(qe, "&", "%26")
		var fbq, scq queryBody
		get("/v1/query?q="+qe+"&backend=fastbit", &fbq)
		get("/v1/query?q="+qe+"&backend=scan", &scq)
		if fbq.Matches == 0 || fbq.Matches != scq.Matches {
			t.Fatalf("%q: fastbit %d, scan %d matches", q, fbq.Matches, scq.Matches)
		}
		var fbh, sch hist2dBody
		hq := "&x=x&y=px&xbins=32&ybins=32&q=" + qe
		get("/v1/hist2d?backend=fastbit"+hq, &fbh)
		get("/v1/hist2d?backend=scan"+hq, &sch)
		if total(fbh) != fbq.Matches || total(sch) != total(fbh) {
			t.Fatalf("%q: hist totals fastbit %d scan %d, matches %d",
				q, total(fbh), total(sch), fbq.Matches)
		}
	}

	// Repeating a request must hit the cache without new backend calls.
	type statsBody struct {
		Cache struct {
			Hits uint64 `json:"hits"`
		} `json:"cache"`
		BackendCalls uint64 `json:"backend_calls"`
	}
	var st0, st1 statsBody
	get("/v1/stats", &st0)
	var repeat queryBody
	get("/v1/query?q=px%20%3E%201e10&backend=fastbit", &repeat)
	if repeat.Outcome != "hit" {
		t.Fatalf("repeat outcome %q, want hit", repeat.Outcome)
	}
	get("/v1/stats", &st1)
	if st1.Cache.Hits != st0.Cache.Hits+1 || st1.BackendCalls != st0.BackendCalls {
		t.Fatalf("stats before %+v after %+v", st0, st1)
	}

	// qload replays sessions and writes the benchmark JSON.
	benchPath := filepath.Join(t.TempDir(), "BENCH_serve.json")
	cmd := exec.Command(filepath.Join(bin, "qload"),
		"-url", base, "-sessions", "12", "-concurrency", "4", "-out", benchPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("qload: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Requests int     `json:"requests"`
		P50MS    float64 `json:"p50_ms"`
		P99MS    float64 `json:"p99_ms"`
		HitRate  float64 `json:"cache_hit_rate"`
		Errors   int     `json:"errors"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_serve.json: %v\n%s", err, raw)
	}
	if bench.Requests != 12*4 || bench.Errors != 0 || bench.P50MS <= 0 || bench.P99MS < bench.P50MS {
		t.Fatalf("bench looks wrong: %s", raw)
	}
	// 12 sessions share 2 distinct plans x 2 endpoints: most must hit.
	if bench.HitRate < 0.5 {
		t.Fatalf("cache hit rate %.2f, want >= 0.5\n%s", bench.HitRate, raw)
	}

	// A cancellation-heavy pass: abandoned requests must not fail the run
	// or poison the server for the requests that remain.
	cancelBench := filepath.Join(t.TempDir(), "BENCH_cancel.json")
	cmd = exec.Command(filepath.Join(bin, "qload"),
		"-url", base, "-sessions", "12", "-concurrency", "4",
		"-cancel-frac", "0.5", "-out", cancelBench)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("qload -cancel-frac: %v\n%s", err, out)
	}
	raw, err = os.ReadFile(cancelBench)
	if err != nil {
		t.Fatal(err)
	}
	var cb struct {
		Canceled int `json:"canceled_client"`
		Errors   int `json:"errors"`
	}
	if err := json.Unmarshal(raw, &cb); err != nil {
		t.Fatalf("BENCH_cancel.json: %v\n%s", err, raw)
	}
	if cb.Errors != 0 {
		t.Fatalf("cancellation pass had %d errors: %s", cb.Errors, raw)
	}
	// Server stayed healthy through the churn.
	resp, err := client.Get(base + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after cancel pass: %v %v", err, resp)
	}
	resp.Body.Close()
}
