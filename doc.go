// Package repro is a from-scratch Go reproduction of "High Performance
// Multivariate Visual Data Exploration for Extremely Large Data" (Rübel
// et al., SC 2008): histogram-based parallel coordinates driven by a
// WAH-compressed bitmap index engine, over synthetic laser wakefield
// accelerator particle data.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); executables live under cmd/, runnable walkthroughs under
// examples/, and the per-figure benchmark harness in bench_test.go.
package repro
