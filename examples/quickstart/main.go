// Quickstart: generate a small synthetic laser-wakefield dataset, query
// it, compute histograms both ways, render a parallel coordinates plot
// and trace a particle bunch through time — the whole system in one file.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/histogram"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "", "working directory (default: a temp dir)")
	flag.Parse()

	dir := *out
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "lwfa-quickstart-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	// 1. Generate data + indexes (the one-time preprocessing of Fig. 1).
	cfg := sim.DefaultConfig()
	cfg.Steps = 16
	cfg.BackgroundPerStep = 30000
	cfg.BeamParticles = 300
	dataDir := filepath.Join(dir, "data")
	if _, err := sim.WriteDataset(dataDir, cfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 128},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d timesteps in %s\n", cfg.Steps, dataDir)

	// 2. Open and explore.
	ex, err := core.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	last := ex.Steps() - 1

	// A compound Boolean range query, built in the paper from axis sliders.
	sel, err := ex.Select(last, "px > 5e10 && y > -1e-4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection at t=%d: %d accelerated particles\n", last, sel.Count())

	// 3. Conditional histogram, index-accelerated and by scan — identical.
	spec := histogram.NewSpec2D("x", "px", 64, 64)
	hFast, err := ex.Histogram2D(last, "px > 5e10", spec)
	if err != nil {
		log.Fatal(err)
	}
	ex.SetBackend(fastquery.Scan)
	hScan, err := ex.Histogram2D(last, "px > 5e10", spec)
	if err != nil {
		log.Fatal(err)
	}
	ex.SetBackend(fastquery.FastBit)
	fmt.Printf("conditional 2D histogram: fastbit total=%d, custom total=%d\n",
		hFast.Total(), hScan.Total())

	// 4. Histogram-based parallel coordinates: context + focus.
	canvas, err := ex.ContextFocusPlot(last,
		[]string{"x", "y", "px", "py"}, "", "px > 5e10", core.DefaultPlotOptions())
	if err != nil {
		log.Fatal(err)
	}
	plotPath := filepath.Join(dir, "quickstart.png")
	if err := canvas.SavePNG(plotPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", plotPath)

	// 5. Trace the selected particles back in time by identifier.
	tracks, err := ex.TrackIDs(sel.IDs(), 0, last, core.TrackOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	var born int
	for _, tr := range tracks {
		if tr.Steps[0] > 0 {
			born++
		}
	}
	fmt.Printf("traced %d particles; %d entered the window after t=0\n", len(tracks), born)
	if len(tracks) > 0 {
		tr := tracks[0]
		fmt.Printf("example track id=%d: t=%d..%d, px %.3e -> %.3e\n",
			tr.ID, tr.Steps[0], tr.Steps[tr.Len()-1], tr.Px[0], tr.Px[tr.Len()-1])
	}
}
