// Temporal parallel coordinates: render a characteristic particle subset
// at several timesteps into one plot, one colour per timestep — the
// paper's Fig. 9, which makes the two beams' different acceleration
// histories visible along the px axis while x and xrel stay stable.
//
// Run:
//
//	go run ./examples/temporalpc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fastbit"
	"repro/internal/histogram"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		out     = flag.String("out", "", "working directory (default: a temp dir)")
		binning = flag.String("binning", "uniform", "uniform | adaptive")
	)
	flag.Parse()

	dir := *out
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "lwfa-temporal-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	cfg := sim.DefaultConfig()
	cfg.Steps = 24
	cfg.BackgroundPerStep = 30000
	cfg.BeamParticles = 400
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")
	if _, err := sim.WriteDataset(dataDir, cfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 128},
	}); err != nil {
		log.Fatal(err)
	}

	ex, err := core.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}

	// The subset: particles that end up accelerated. Like the paper, the
	// temporal view is most useful on a characteristic subset of the data.
	last := ex.Steps() - 1
	_, hi, err := ex.VarRange(last, "px")
	if err != nil {
		log.Fatal(err)
	}
	cond := fmt.Sprintf("px > %g", 0.3*hi)

	// Steps from injection to the end, every other step (Fig. 9 uses
	// t = 14..22).
	var steps []int
	for t := s.InjectionStep(); t <= last; t += 2 {
		steps = append(steps, t)
	}

	opt := core.DefaultPlotOptions()
	opt.FocusBins = 160
	if *binning == "adaptive" {
		opt.Binning = histogram.Adaptive
	}
	canvas, err := ex.TemporalPlot(steps, []string{"x", "xrel", "px", "y"}, cond, opt)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "temporal.png")
	if err := canvas.SavePNG(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered %d timesteps (%v) of subset %q\n", len(steps), steps, cond)
	fmt.Printf("wrote %s\n", path)
}
