// Beam analysis: the paper's complete Section IV use case on synthetic
// data — beam selection at a late timestep, assessment at the momentum
// peak, back-tracing to the injection timesteps, refinement with a second
// spatial threshold, and (with -3d) the two-stage 3D selection of Fig. 10.
//
// Run:
//
//	go run ./examples/beamanalysis          # 2D analysis (Figs. 5-8)
//	go run ./examples/beamanalysis -3d      # 3D analysis (Fig. 10)
package main

import (
	"flag"
	"fmt"
	"image/color"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/fastbit"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	var (
		out    = flag.String("out", "", "working directory (default: a temp dir)")
		use3D  = flag.Bool("3d", false, "run the 3D analysis variant")
		keepPx = flag.Float64("quantile", 0.995, "beam selection quantile in px")
	)
	flag.Parse()

	dir := *out
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "lwfa-beam-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	cfg := sim.DefaultConfig()
	cfg.Steps = 24
	cfg.BackgroundPerStep = 40000
	cfg.BeamParticles = 400
	if *use3D {
		cfg.Dim = 3
	}
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dataDir := filepath.Join(dir, "data")
	if _, err := sim.WriteDataset(dataDir, cfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 192},
	}); err != nil {
		log.Fatal(err)
	}

	ex, err := core.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	last := ex.Steps() - 1
	peak := s.PeakStep()
	inject := s.InjectionStep()

	// --- Beam selection (Section IV-A / Fig. 5) -------------------------
	// Threshold px at the last timestep; like the paper's px > 8.872e10,
	// chosen here as a high quantile so scaled runs stay comparable.
	thr := quantileThreshold(ex, last, *keepPx)
	queryStr := fmt.Sprintf("px > %g", thr)
	if *use3D {
		// Fig. 10: first remove the background, then cut on px and x to
		// isolate the first wake period.
		xCut := firstBucketCut(ex, last)
		queryStr = fmt.Sprintf("px > %g && x > %g", thr, xCut)
	}
	beam, err := ex.Select(last, queryStr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("beam selection at t=%d with %q: %d particles\n", last, queryStr, beam.Count())
	if beam.Count() == 0 {
		log.Fatal("selection empty; lower -quantile")
	}

	canvas, err := ex.ContextFocusPlot(last,
		plotVars(*use3D), "", queryStr, core.DefaultPlotOptions())
	if err != nil {
		log.Fatal(err)
	}
	sel := filepath.Join(dir, "beam_selection.png")
	if err := canvas.SavePNG(sel); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (context + focus parallel coordinates)\n", sel)

	// --- Beam assessment (Section IV-B) ---------------------------------
	// Trace the selected particles and compare momentum at the peak and
	// the final step: the first beam outruns the wave and decelerates.
	tracks, err := ex.TrackIDs(beam.IDs(), inject-1, last, core.TrackOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d particles over t=[%d,%d]\n", len(tracks), inject-1, last)

	var decel int
	for _, tr := range tracks {
		pAtPeak, ok1 := pxAt(tr, peak)
		pAtLast, ok2 := pxAt(tr, last)
		if ok1 && ok2 && pAtLast < pAtPeak {
			decel++
		}
	}
	fmt.Printf("beam assessment: %d/%d particles decelerated after the t=%d dephasing peak\n",
		decel, len(tracks), peak)

	// --- Beam formation (Section IV-C) -----------------------------------
	// When did the beam particles enter the simulation window?
	entries := map[int]int{}
	for _, tr := range tracks {
		entries[tr.Steps[0]]++
	}
	steps := make([]int, 0, len(entries))
	for t := range entries {
		steps = append(steps, t)
	}
	sort.Ints(steps)
	fmt.Println("beam formation (injection census):")
	for _, t := range steps {
		fmt.Printf("  t=%-3d %d particles enter\n", t, entries[t])
	}

	// --- Beam refinement (Section IV-D / Fig. 8) -------------------------
	// Re-select at the injection time with an extra x threshold to keep
	// only the first wake period, then verify the subset stays a subset.
	atInject, err := beam.AtStep(inject + 1)
	if err != nil {
		log.Fatal(err)
	}
	xCut := firstBucketCut(ex, inject+1)
	refined, err := atInject.Refine(fmt.Sprintf("x > %g", xCut))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("beam refinement at t=%d: %d of %d beam particles lie in the first wake period (x > %.4g)\n",
		inject+1, refined.Count(), atInject.Count(), xCut)

	// Fig. 8 style overlay: whole beam in red, refined subset in green,
	// over the full-data context.
	beamQ := queryForContext(atInject)
	refCanvas, err := ex.MultiFocusPlot(inject+1, plotVars(*use3D), "",
		[]core.Focus{
			{Cond: beamQ, Color: color.RGBA{230, 70, 70, 255}},
			{Cond: fmt.Sprintf("%s && x > %g", beamQ, xCut), Color: color.RGBA{80, 220, 120, 255}},
		}, core.DefaultPlotOptions())
	if err != nil {
		log.Fatal(err)
	}
	ref := filepath.Join(dir, "beam_refinement.png")
	if err := refCanvas.SavePNG(ref); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (refined subset over beam context)\n", ref)

	// --- Pseudocolor views (Figs. 5b, 6) ----------------------------------
	// All particles in gray; the beam coloured by px.
	scatterCanvas, err := ex.ScatterPlot(last, "x", "y", "px", queryStr, core.DefaultScatterOptions())
	if err != nil {
		log.Fatal(err)
	}
	sc := filepath.Join(dir, "beam_pseudocolor.png")
	if err := scatterCanvas.SavePNG(sc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (pseudocolor beam over gray context)\n", sc)

	// --- Particle traces (Figs. 7, 8c) ------------------------------------
	// World lines of a manageable subset, coloured by momentum.
	subset := tracks
	if len(subset) > 60 {
		subset = subset[:60]
	}
	traceCanvas, err := ex.TracePlot(subset, last, core.ColorByPx, core.DefaultScatterOptions())
	if err != nil {
		log.Fatal(err)
	}
	tp := filepath.Join(dir, "beam_traces.png")
	if err := traceCanvas.SavePNG(tp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (particle traces coloured by px)\n", tp)

	// --- Quantitative coupling (the paper's future-work direction) -------
	quality, err := beam.BeamQuality()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("beam quality at t=%d: mean px %.3e, energy spread %.2f%%, rms y %.3e, emittance %.3e\n",
		last, quality.MeanPx, 100*quality.EnergySpread, quality.RMSy, quality.Emittance)

	history, err := beam.BeamHistory(inject, last)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("beam evolution (mean px / energy spread per step):")
	for i, step := range history.Steps {
		q := history.Quality[i]
		fmt.Printf("  t=%-3d px %.3e  spread %5.2f%%  n=%d\n",
			step, q.MeanPx, 100*q.EnergySpread, q.N)
	}
}

// plotVars picks the plotted axes per dimensionality.
func plotVars(use3D bool) []string {
	if use3D {
		return []string{"x", "y", "z", "px", "py", "pz"}
	}
	return []string{"x", "y", "px", "py"}
}

// quantileThreshold returns the px value at the given quantile of a step.
func quantileThreshold(ex *core.Explorer, step int, q float64) float64 {
	sel, err := ex.Select(step, "px > -1e300")
	if err != nil {
		log.Fatal(err)
	}
	px, err := sel.Values("px")
	if err != nil {
		log.Fatal(err)
	}
	sort.Float64s(px)
	i := int(q * float64(len(px)))
	if i >= len(px) {
		i = len(px) - 1
	}
	return px[i]
}

// firstBucketCut returns an x threshold separating the first wake period
// (behind the window's trailing edge) from the rest, placed one wake
// wavelength from the right edge of the window.
func firstBucketCut(ex *core.Explorer, step int) float64 {
	_, hi, err := ex.VarRange(step, "x")
	if err != nil {
		log.Fatal(err)
	}
	lo, _, err := ex.VarRange(step, "x")
	if err != nil {
		log.Fatal(err)
	}
	return hi - 0.30*(hi-lo)
}

// pxAt returns a track's momentum at one step.
func pxAt(tr *core.Track, step int) (float64, bool) {
	for i, t := range tr.Steps {
		if t == step {
			return tr.Px[i], true
		}
	}
	return 0, false
}

// queryForContext renders a selection's query string.
func queryForContext(sel *core.Selection) string { return sel.Query().String() }
