// Query-driven visualization with contracts: assemble a VisIt-style
// pipeline where a downstream parallel-coordinates sink and a selection
// stage negotiate a contract that travels upstream, so the I/O source
// computes only the histograms asked for, restricted by the out-of-band
// Boolean range query set (paper Sections II-C and II-D).
//
// Run:
//
//	go run ./examples/querydriven
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fastbit"
	"repro/internal/fastquery"
	"repro/internal/pcoords"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "", "working directory (default: a temp dir)")
	flag.Parse()

	dir := *out
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "lwfa-querydriven-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	cfg := sim.DefaultConfig()
	cfg.Steps = 10
	cfg.BackgroundPerStep = 25000
	cfg.BeamParticles = 250
	dataDir := filepath.Join(dir, "data")
	if _, err := sim.WriteDataset(dataDir, cfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 128},
	}); err != nil {
		log.Fatal(err)
	}
	src, err := fastquery.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}

	// The user's interactive selection, as the paper's example query:
	// high momentum particles in the upper half of the beam.
	selection := &pipeline.SelectionStage{
		Query:   query.MustParse("px > 1e9 && y > 0"),
		WantIDs: true,
	}
	// The sink demands per-axis-pair histograms.
	sink := &pipeline.PCPlotSink{
		Axes: []pcoords.Axis{
			{Var: "x", Min: 0, Max: 1.5e-3},
			{Var: "y", Min: -1e-4, Max: 1e-4},
			{Var: "px", Min: 0, Max: 1.3e11},
			{Var: "py", Min: -2e9, Max: 2e9},
		},
		Bins: 96,
	}
	pl, err := pipeline.New(src, fastquery.FastBit, selection, sink)
	if err != nil {
		log.Fatal(err)
	}

	// Show what the negotiated contract looks like before executing.
	contract := pipeline.NewContract()
	if err := sink.Negotiate(contract); err != nil {
		log.Fatal(err)
	}
	if err := selection.Negotiate(contract); err != nil {
		log.Fatal(err)
	}
	vars := make([]string, 0, len(contract.Variables))
	for v := range contract.Variables {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	fmt.Printf("negotiated contract: variables=%v, %d histogram specs\n", vars, len(contract.Hist2D))
	if rs, ok := contract.RangeSet(); ok {
		fmt.Println("out-of-band range query set:")
		keys := make([]string, 0, len(rs))
		for k := range rs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-4s in %s\n", k, rs[k])
		}
	}

	step := cfg.Steps - 1
	payload, err := pl.Run(step)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step %d: %d of %d records matched; %d histograms computed at the I/O stage\n",
		step, len(selection.Positions), payload.Rows, len(payload.Hists))

	path := filepath.Join(dir, "querydriven.png")
	if err := sink.Canvas.SavePNG(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
