// Drill-down: demonstrate the smooth multi-resolution exploration the
// paper contrasts with fixed-resolution precomputed histograms — zoom the
// momentum axis onto the accelerated tail in several steps, recomputing
// full-resolution histograms for each narrowed range, then quantify the
// final selection with traditional statistics.
//
// Run:
//
//	go run ./examples/drilldown
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/fastbit"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "", "working directory (default: a temp dir)")
	flag.Parse()

	dir := *out
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "lwfa-drilldown-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
	}

	cfg := sim.DefaultConfig()
	cfg.Steps = 20
	cfg.BackgroundPerStep = 40000
	cfg.BeamParticles = 300
	dataDir := filepath.Join(dir, "data")
	if _, err := sim.WriteDataset(dataDir, cfg, sim.WriteOptions{
		Index: fastbit.IndexOptions{Bins: 192},
	}); err != nil {
		log.Fatal(err)
	}
	ex, err := core.Open(dataDir)
	if err != nil {
		log.Fatal(err)
	}
	last := ex.Steps() - 1

	opt := core.DefaultPlotOptions()
	opt.ContextBins = 128
	view, err := ex.NewView(last, []string{"x", "y", "px", "py"}, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Zoom the px axis toward the accelerated tail in three steps; each
	// zoom recomputes the histograms over the narrowed range at full
	// resolution — bin width shrinks with every step.
	_, pxMax, err := ex.VarRange(last, "px")
	if err != nil {
		log.Fatal(err)
	}
	for level, lo := range []float64{0, 0.3 * pxMax, 0.7 * pxMax} {
		if level > 0 {
			if err := view.Zoom("px", lo, pxMax); err != nil {
				log.Fatal(err)
			}
		}
		w, err := view.BinWidth("px")
		if err != nil {
			log.Fatal(err)
		}
		canvas, err := view.Render()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("zoom_level_%d.png", level))
		if err := canvas.SavePNG(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("zoom level %d: px bin width %.3e, wrote %s\n", level, w, path)
	}

	// Quantify the drilled-down region with traditional statistics.
	cond := fmt.Sprintf("px > %g", 0.7*pxMax)
	if err := view.SetFocus(cond); err != nil {
		log.Fatal(err)
	}
	canvas, err := view.Render()
	if err != nil {
		log.Fatal(err)
	}
	focusPath := filepath.Join(dir, "zoom_focus.png")
	if err := canvas.SavePNG(focusPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (focus layer on drilled view)\n", focusPath)

	sel, err := ex.Select(last, cond)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := sel.Summary("px")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection %q: n=%d, median px %.3e, IQR [%.3e, %.3e]\n",
		cond, sum.N, sum.Median, sum.Q25, sum.Q75)
	corr, err := sel.CorrelationMatrix([]string{"x", "px", "y"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corr(x,px)=%.3f corr(x,y)=%.3f corr(px,y)=%.3f\n",
		corr[0][1], corr[0][2], corr[1][2])
}
